package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"mtpu/internal/contracts"
	"mtpu/internal/state"
	"mtpu/internal/types"
)

// Scenarios lists every recognizable traffic shape the scenario
// generator produces. Each one is a chained block stream (like
// StreamSpec) whose account and contract popularity follows a Zipf(s)
// distribution — the mainnet-shaped corpus of ROADMAP item 3:
//
//	erc20-mix  transfers across the four token archetypes, Zipfian
//	           senders/recipients and token choice: hot accounts chain
//	           through nonces and balance slots.
//	dex        constant-product swaps over dexPairs AMM pairs with a
//	           Zipf-hot pair: every swap reads and writes both reserves,
//	           so the hot pair serializes — where optimistic execution
//	           is predicted to collapse.
//	nft-mint   a mint storm on the single OpenSea contract: pairwise
//	           independent mints from Zipfian senders plus read-only
//	           window shopping — the hotspot optimization's home turf.
//	airdrop    fan-outs from a handful of distributor accounts
//	           (batchTransfer3 and single transfers): per-distributor
//	           nonce chains make high skew near-sequential.
//	oracle     price-feed contention on the PriceOracle contract: a few
//	           posters submit to Zipf-hot feeds while Zipfian consumers
//	           read them, yielding hot read-write conflict chains.
var Scenarios = []string{"erc20-mix", "dex", "nft-mint", "airdrop", "oracle"}

// Shape parameters of the scenario generators. They are constants, not
// spec knobs: the spec's Skew moves the mass across these fixed pools.
const (
	// dexPairs is how many AMM pair contracts the dex scenario deploys.
	dexPairs = 8
	// airdropDistributors is the sender-pool size of the airdrop fan-out.
	airdropDistributors = 8
	// oracleFeeds and oraclePosters size the oracle scenario's feed and
	// submitter pools.
	oracleFeeds   = 16
	oraclePosters = 8
)

// ScenarioSpec is the serializable recipe for one scenario stream:
// Blocks chained blocks of Txs transactions, popularity skew s = Skew,
// deterministically derived from Seed. Like StreamSpec it round-trips
// through strict JSON and a flag shorthand, and its stream is a chain —
// nonces, balances, mint ids and feed rounds carry across blocks, so
// block N+1 is only valid against block N's post-state.
type ScenarioSpec struct {
	// Scenario names the traffic shape (one of Scenarios).
	Scenario string `json:"scenario"`
	// Blocks is the stream length.
	Blocks int `json:"blocks"`
	// Txs is the per-block transaction count.
	Txs int `json:"txs"`
	// Skew is the Zipf s-parameter of account/contract popularity:
	// 0 is uniform, ~1 matches mainnet account skew, larger values
	// concentrate traffic on ever-fewer hot entities.
	Skew float64 `json:"skew,omitempty"`
	// Seed drives the generator's deterministic randomness.
	Seed int64 `json:"seed"`
	// Accounts sizes the funded account pool; 0 means 4×Txs+64.
	Accounts int `json:"accounts,omitempty"`
}

// Validate rejects scenario specs no generator can honour. Skew must be
// finite: NaN would silently corrupt every CDF the sampler builds.
func (s ScenarioSpec) Validate() error {
	known := false
	for _, n := range Scenarios {
		if s.Scenario == n {
			known = true
		}
	}
	if !known {
		return fmt.Errorf("workload: unknown scenario %q (valid: %s)", s.Scenario, strings.Join(Scenarios, ", "))
	}
	if s.Blocks < 1 {
		return fmt.Errorf("workload: scenario needs at least one block, got %d", s.Blocks)
	}
	if s.Txs < 1 {
		return fmt.Errorf("workload: scenario needs at least one transaction per block, got %d", s.Txs)
	}
	if math.IsNaN(s.Skew) || math.IsInf(s.Skew, 0) || s.Skew < 0 || s.Skew > 8 {
		return fmt.Errorf("workload: scenario skew %v outside [0,8]", s.Skew)
	}
	if s.Accounts < 0 {
		return fmt.Errorf("workload: negative scenario account pool %d", s.Accounts)
	}
	return nil
}

// AccountPool resolves the effective account-pool size.
func (s ScenarioSpec) AccountPool() int {
	if s.Accounts > 0 {
		return s.Accounts
	}
	return 4*s.Txs + 64
}

// String renders the spec in the flag shorthand ParseScenarioSpec
// accepts.
func (s ScenarioSpec) String() string {
	out := fmt.Sprintf("scenario=%s,blocks=%d,txs=%d,skew=%g,seed=%d", s.Scenario, s.Blocks, s.Txs, s.Skew, s.Seed)
	if s.Accounts > 0 {
		out += fmt.Sprintf(",accounts=%d", s.Accounts)
	}
	return out
}

// Describe renders the ledger-key fragment identifying this workload.
func (s ScenarioSpec) Describe() string {
	return fmt.Sprintf("%s-blocks%d-txs%d-skew%.2f", s.Scenario, s.Blocks, s.Txs, s.Skew)
}

// ParseScenarioSpec decodes a scenario spec from either strict JSON
// (`{"scenario":"dex","blocks":500,"txs":64,"skew":1.2,"seed":1}`) or
// the flag shorthand `scenario=dex,blocks=500,txs=64,skew=1.2,seed=1`
// (keys optional except scenario, defaults applied), then validates it.
func ParseScenarioSpec(text string) (ScenarioSpec, error) {
	s := ScenarioSpec{Blocks: 100, Txs: 64, Skew: 1.0, Seed: 1}
	text = strings.TrimSpace(text)
	if strings.HasPrefix(text, "{") {
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return ScenarioSpec{}, fmt.Errorf("workload: decoding scenario spec: %w", err)
		}
		return s, s.Validate()
	}
	for _, kv := range strings.Split(text, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return ScenarioSpec{}, fmt.Errorf("workload: scenario spec field %q is not key=value", kv)
		}
		var err error
		switch key {
		case "scenario":
			s.Scenario = val
		case "blocks":
			s.Blocks, err = strconv.Atoi(val)
		case "txs":
			s.Txs, err = strconv.Atoi(val)
		case "skew":
			s.Skew, err = strconv.ParseFloat(val, 64)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "accounts":
			s.Accounts, err = strconv.Atoi(val)
		default:
			return ScenarioSpec{}, fmt.Errorf("workload: unknown scenario spec key %q (valid: scenario, blocks, txs, skew, seed, accounts)", key)
		}
		if err != nil {
			return ScenarioSpec{}, fmt.Errorf("workload: scenario spec %s=%q: %w", key, val, err)
		}
	}
	return s, s.Validate()
}

// BlockSource is a chained block producer: Genesis is the chain's
// pre-state, and Next yields blocks that are only valid executed in
// order against the evolving state. *Stream and *ScenarioStream both
// implement it, so the stream service and the difftest harness consume
// either through one seam.
type BlockSource interface {
	// Genesis returns the chain's pre-state (read-only; copy before
	// mutating).
	Genesis() *state.StateDB
	// Next produces the chain's next block, or (nil, false) at the end.
	Next() (*types.Block, bool)
	// Remaining reports how many blocks Next will still produce.
	Remaining() int
}

// SourceSpec is the spec face of a BlockSource: both StreamSpec and
// ScenarioSpec satisfy it, so `mtpu-serve -source` accepts either form.
type SourceSpec interface {
	Validate() error
	// OpenSource builds the spec's block source.
	OpenSource() (BlockSource, error)
	// Describe renders the stable ledger-key fragment identifying the
	// workload (no seed, no account pool — runs with different seeds of
	// one shape compare under one key).
	Describe() string
	// String renders the spec in its parseable shorthand.
	String() string
}

// OpenSource satisfies SourceSpec.
func (s ScenarioSpec) OpenSource() (BlockSource, error) { return s.Open() }

// ParseSourceSpec decodes either spec form, dispatching on the presence
// of a scenario key: `scenario=dex,...` (or JSON with a "scenario"
// field) parses as a ScenarioSpec, everything else as a StreamSpec.
func ParseSourceSpec(text string) (SourceSpec, error) {
	t := strings.TrimSpace(text)
	if strings.HasPrefix(t, "{") {
		var probe struct {
			Scenario *string `json:"scenario"`
		}
		if err := json.Unmarshal([]byte(t), &probe); err == nil && probe.Scenario != nil {
			return ParseScenarioSpec(text)
		}
		return ParseStreamSpec(text)
	}
	for _, kv := range strings.Split(t, ",") {
		if key, _, ok := strings.Cut(strings.TrimSpace(kv), "="); ok && key == "scenario" {
			return ParseScenarioSpec(text)
		}
	}
	return ParseStreamSpec(text)
}

// ScenarioStream generates the spec's blocks one at a time. Like
// Stream it is a chain — one beginBlock for the whole stream, nonces
// and resource cursors carrying across Next calls — and is not safe for
// concurrent use.
type ScenarioStream struct {
	spec    ScenarioSpec
	gen     *Generator
	genesis *state.StateDB
	pairs   []*contracts.Contract
	oracle  *contracts.Contract
	emit    func() *types.Transaction
	count   int
	next    int
}

// Open validates the spec, deploys and seeds any scenario-specific
// contracts on top of the standard genesis, and binds the scenario's
// transaction emitter.
func (s ScenarioSpec) Open() (*ScenarioStream, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := NewGenerator(s.Seed, s.AccountPool())
	st := &ScenarioStream{spec: s, gen: g}
	// Extra contracts register before Genesis so DeployAll installs
	// them; their storage seeding runs on the genesis state afterwards,
	// exactly like the standard contracts' seeding inside Genesis.
	switch s.Scenario {
	case "dex":
		for i := 0; i < dexPairs; i++ {
			p := contracts.NewDEXPair(i)
			st.pairs = append(st.pairs, p)
			g.AddContract(p)
		}
	case "oracle":
		st.oracle = contracts.NewPriceOracle()
		g.AddContract(st.oracle)
	}
	st.genesis = g.Genesis()
	switch s.Scenario {
	case "dex":
		for _, p := range st.pairs {
			contracts.SeedRouter(st.genesis, p, g.accounts, seedTokenBalance, 1<<44)
		}
	case "oracle":
		contracts.SeedOracleFeeds(st.genesis, st.oracle, oracleFeeds, 1000)
	}
	// One beginBlock for the whole stream: nonces, balances and cursors
	// then carry across Next calls, producing a chained block sequence.
	g.beginBlock()
	st.bind()
	return st, nil
}

// Genesis returns the chain's pre-state (read-only; copy before
// mutating).
func (st *ScenarioStream) Genesis() *state.StateDB { return st.genesis }

// Spec returns the stream's recipe.
func (st *ScenarioStream) Spec() ScenarioSpec { return st.spec }

// Remaining reports how many blocks Next will still produce.
func (st *ScenarioStream) Remaining() int { return st.spec.Blocks - st.next }

// Next produces the chain's next block, or (nil, false) once Blocks
// blocks have been produced. Blocks are emitted without a conflict DAG:
// deriving it is the prefetch/decode stage's job, exactly as a block
// arriving over the network would be handled.
func (st *ScenarioStream) Next() (*types.Block, bool) {
	if st.next >= st.spec.Blocks {
		return nil, false
	}
	header := st.gen.Header()
	header.Height += uint64(st.next)
	txs := make([]*types.Transaction, 0, st.spec.Txs)
	for i := 0; i < st.spec.Txs; i++ {
		txs = append(txs, st.emit())
	}
	block := types.NewBlock(header, txs)
	block.DAG = nil
	st.next++
	return block, true
}

// bind installs the scenario's transaction emitter. All Zipf CDFs are
// built here once; sampling draws only on the generator's seeded rng,
// so the stream is a pure function of the spec.
func (st *ScenarioStream) bind() {
	g := st.gen
	zAcct := newZipf(len(g.accounts), st.spec.Skew)
	// account draws a Zipf-ranked account; hot rank 0 is g.accounts[0].
	account := func() types.Address { return g.accounts[zAcct.sample(g.rng)] }
	// tail returns the i-th account from the end of the pool — small
	// fixed roles (distributors, posters) that must not collide with
	// the Zipf-hot low ranks.
	tail := func(i int) types.Address { return g.accounts[len(g.accounts)-1-i] }

	switch st.spec.Scenario {
	case "erc20-mix":
		zTok := newZipf(len(tokenNames), st.spec.Skew)
		st.emit = func() *types.Transaction {
			token := g.Contract(tokenNames[zTok.sample(g.rng)])
			from := account()
			ti := zAcct.sample(g.rng)
			if g.accounts[ti] == from {
				ti = (ti + 1) % len(g.accounts)
			}
			return g.call(from, token, 0, "transfer", g.accounts[ti], uint64(10))
		}

	case "dex":
		zPair := newZipf(dexPairs, st.spec.Skew)
		st.emit = func() *types.Transaction {
			pair := st.pairs[zPair.sample(g.rng)]
			from := account()
			st.count++
			if st.count%8 == 0 {
				return g.call(from, pair, 0, "addLiquidity", uint64(500), uint64(500))
			}
			fn := "swap0For1"
			if g.rng.Intn(2) == 1 {
				fn = "swap1For0"
			}
			return g.call(from, pair, 0, fn, uint64(100+g.rng.Intn(900)))
		}

	case "nft-mint":
		market := g.Contract("OpenSea")
		st.emit = func() *types.Transaction {
			from := account()
			st.count++
			if st.count%7 == 0 {
				// Read-only window shopping between mints.
				return g.call(from, market, 0, "ownerOf", uint64(1+g.rng.Intn(512)))
			}
			id := g.nextMintID
			g.nextMintID++
			return g.call(from, market, 0, "mintItem", id)
		}

	case "airdrop":
		zDist := newZipf(airdropDistributors, st.spec.Skew)
		zTok := newZipf(len(tokenNames), st.spec.Skew)
		st.emit = func() *types.Transaction {
			from := tail(zDist.sample(g.rng))
			token := g.Contract(tokenNames[zTok.sample(g.rng)])
			if g.rng.Float64() < 0.7 {
				return g.call(from, token, 0, "batchTransfer3",
					account(), account(), account(), uint64(5))
			}
			return g.call(from, token, 0, "transfer", account(), uint64(10))
		}

	case "oracle":
		zFeed := newZipf(oracleFeeds, st.spec.Skew)
		zPoster := newZipf(oraclePosters, st.spec.Skew)
		st.emit = func() *types.Transaction {
			feed := uint64(zFeed.sample(g.rng))
			if g.rng.Float64() < 0.3 {
				return g.call(tail(zPoster.sample(g.rng)), st.oracle, 0,
					"submit", feed, uint64(900+g.rng.Intn(200)))
			}
			return g.call(account(), st.oracle, 0, "consume", feed)
		}
	}
}
