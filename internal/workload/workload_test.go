package workload

import (
	"math"
	"testing"

	"mtpu/internal/types"
)

func TestTokenBlockDependencyRatio(t *testing.T) {
	for _, target := range []float64{0, 0.2, 0.5, 0.8, 1.0} {
		g := NewGenerator(42, 600)
		genesis := g.Genesis()
		block := g.TokenBlock(200, target)
		if _, err := BuildDAG(genesis, block); err != nil {
			t.Fatalf("target %.1f: %v", target, err)
		}
		got := block.DAG.DependentRatio()
		tol := 0.12
		if target == 0 || target == 1 {
			tol = 0.02
		}
		if math.Abs(got-target) > tol {
			t.Errorf("target ratio %.2f: achieved %.2f", target, got)
		}
	}
}

func TestTokenBlockZeroRatioFullyParallel(t *testing.T) {
	g := NewGenerator(7, 600)
	genesis := g.Genesis()
	block := g.TokenBlock(150, 0)
	if _, err := BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	for i, deps := range block.DAG.Deps {
		if len(deps) != 0 {
			t.Fatalf("tx %d unexpectedly depends on %v", i, deps)
		}
	}
	if got := block.DAG.CriticalPathLen(); got != 1 {
		t.Fatalf("critical path %d, want 1", got)
	}
}

func TestTokenBlockFullRatioChains(t *testing.T) {
	g := NewGenerator(9, 800)
	genesis := g.Genesis()
	block := g.TokenBlock(100, 1.0)
	if _, err := BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	if got := block.DAG.DependentRatio(); got < 0.98 {
		t.Fatalf("dependent ratio %.2f, want ~1", got)
	}
	if cp := block.DAG.CriticalPathLen(); cp < 3 {
		t.Fatalf("critical path %d suspiciously short for fully chained block", cp)
	}
}

func TestERC20BlockAllSucceed(t *testing.T) {
	for _, share := range []float64{0, 0.4, 1.0} {
		g := NewGenerator(11, 2000)
		genesis := g.Genesis()
		block := g.ERC20Block(120, share)
		receipts, err := BuildDAG(genesis, block)
		if err != nil {
			t.Fatalf("share %.1f: %v", share, err)
		}
		for i, r := range receipts {
			if r.Status != types.ReceiptSuccess {
				t.Fatalf("share %.1f: tx %d failed", share, i)
			}
		}
		// Count Tether calls.
		tether := g.Contract("TetherUSD").Address
		count := 0
		for _, tx := range block.Transactions {
			if tx.To != nil && *tx.To == tether {
				count++
			}
		}
		want := int(float64(120)*share + 0.5)
		if count != want {
			t.Fatalf("share %.1f: %d tether txs, want %d", share, count, want)
		}
	}
}

func TestBatchesSucceedForAllContracts(t *testing.T) {
	g := NewGenerator(13, 4000)
	genesis := g.Genesis()
	for _, c := range g.Contracts {
		if c.Name == "TokenReceiver" {
			continue // callback target, not directly invoked
		}
		block := g.Batch(c, 40)
		if _, err := BuildDAG(genesis.Copy(), block); err != nil {
			t.Errorf("%s batch: %v", c.Name, err)
		}
	}
}

func TestDAGIsValidTopologicalOrder(t *testing.T) {
	g := NewGenerator(17, 600)
	genesis := g.Genesis()
	block := g.TokenBlock(120, 0.6)
	if _, err := BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}
	for j, deps := range block.DAG.Deps {
		for _, d := range deps {
			if d >= j {
				t.Fatalf("edge %d→%d is not forward", d, j)
			}
		}
	}
}

func TestContractOf(t *testing.T) {
	g := NewGenerator(19, 200)
	block := g.TokenBlock(20, 0)
	cs := ContractOf(block)
	if len(cs) != 20 {
		t.Fatalf("len %d", len(cs))
	}
	for i, c := range cs {
		if c.IsZero() {
			t.Fatalf("tx %d has zero contract", i)
		}
	}
	// A plain transfer has a zero contract.
	tx := g.PlainTransfer(accountAddr(0), accountAddr(1), 5)
	b2 := types.NewBlock(g.Header(), []*types.Transaction{tx})
	if cs := ContractOf(b2); !cs[0].IsZero() {
		t.Fatal("plain transfer should map to zero contract")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(5, 500)
	g2 := NewGenerator(5, 500)
	b1 := g1.TokenBlock(50, 0.5)
	b2 := g2.TokenBlock(50, 0.5)
	for i := range b1.Transactions {
		if b1.Transactions[i].Hash() != b2.Transactions[i].Hash() {
			t.Fatalf("tx %d differs between identically seeded generators", i)
		}
	}
}

// TestVerifyDAG: the DAG built at consensus time must match the
// conflicts a sequential replay observes — and tampering with it in
// either direction (dropping a real edge, inventing a fake one) must be
// caught.
func TestVerifyDAG(t *testing.T) {
	for _, ratio := range []float64{0, 0.4, 1.0} {
		g := NewGenerator(21, 600)
		genesis := g.Genesis()
		block := g.MixedBlock(80, ratio)
		if _, err := BuildDAG(genesis, block); err != nil {
			t.Fatalf("ratio %.1f: %v", ratio, err)
		}
		if err := VerifyDAG(genesis, block); err != nil {
			t.Fatalf("ratio %.1f: fresh DAG failed verification: %v", ratio, err)
		}
	}

	g := NewGenerator(21, 600)
	genesis := g.Genesis()
	block := g.TokenBlock(80, 0.8)
	if _, err := BuildDAG(genesis, block); err != nil {
		t.Fatal(err)
	}

	// Drop one real edge.
	var from, to int
	found := false
	for j, deps := range block.DAG.Deps {
		if len(deps) > 0 {
			from, to, found = deps[0], j, true
			break
		}
	}
	if !found {
		t.Fatal("dep-0.8 block produced no edges")
	}
	saved := block.DAG.Deps[to]
	block.DAG.Deps[to] = saved[1:]
	if err := VerifyDAG(genesis, block); err == nil {
		t.Errorf("missing edge %d→%d not detected", from, to)
	}
	block.DAG.Deps[to] = saved

	// Invent an edge no replay justifies.
	fakeTo := -1
	for j := 1; j < block.DAG.Len(); j++ {
		declared := false
		for _, i := range block.DAG.Deps[j] {
			if i == 0 {
				declared = true
				break
			}
		}
		if !declared {
			fakeTo = j
			break
		}
	}
	if fakeTo < 0 {
		t.Fatal("every tx already depends on tx 0")
	}
	block.DAG.AddEdge(0, fakeTo)
	if err := VerifyDAG(genesis, block); err == nil {
		t.Errorf("spurious edge 0→%d not detected", fakeTo)
	}
}
