package workload

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"mtpu/internal/types"
)

func generate(t *testing.T, s Spec) *types.Block {
	t.Helper()
	_, block, err := s.Generate()
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	return block
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Kind: "token", Txs: 8, Dep: 0.5, Seed: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Kind: "warp", Txs: 8, Seed: 1},
		{Kind: "token", Txs: 0, Seed: 1},
		{Kind: "token", Txs: 8, Dep: 1.5, Seed: 1},
		{Kind: "sct", Txs: 8, Share: -0.1, Seed: 1},
		{Kind: "batch", Txs: 8, Seed: 1}, // no contract
		{Kind: "token", Txs: 8, Seed: 1, Accounts: -2},
		{Kind: "token", Txs: 8, Seed: 1, Drop: []int{8}},
		{Kind: "token", Txs: 8, Seed: 1, Drop: []int{1, 1}},
		{Kind: "token", Txs: 2, Seed: 1, Drop: []int{0, 1}},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("invalid spec accepted: %s", s)
		}
	}
}

func TestSpecParseRoundTrip(t *testing.T) {
	in := Spec{Kind: "batch", Txs: 24, Seed: 7, Contract: "WETH9", Drop: []int{3, 5}}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != in.Kind || out.Txs != in.Txs || out.Seed != in.Seed ||
		out.Contract != in.Contract || len(out.Drop) != 2 {
		t.Fatalf("round trip changed the spec: %s -> %s", in, out)
	}
	if _, err := ParseSpec([]byte(`{"kind":"token","txs":8,"seed":1,"warp":9}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// TestSpecGenerateEveryKind: each kind produces a valid block whose DAG
// matches sequential-replay conflicts (the corners included).
func TestSpecGenerateEveryKind(t *testing.T) {
	for _, s := range []Spec{
		{Kind: "token", Txs: 16, Dep: 0.5, Seed: 3},
		{Kind: "mixed", Txs: 16, Dep: 0.4, Seed: 3},
		{Kind: "sct", Txs: 16, Share: 0.5, Seed: 3},
		{Kind: "erc20", Txs: 16, Share: 0.6, Seed: 3},
		{Kind: "batch", Txs: 16, Seed: 3, Contract: "TetherUSD"},
		{Kind: "chain", Txs: 16, Seed: 3},
		{Kind: "hotspot", Txs: 16, Seed: 3},
		{Kind: "dupaddr", Txs: 16, Seed: 3},
	} {
		genesis, block, err := s.Generate()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(block.Transactions) != 16 {
			t.Errorf("%s: %d transactions", s, len(block.Transactions))
		}
		if err := VerifyDAG(genesis, block); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

// TestCornerShapes pins the adversarial structure each corner promises.
func TestCornerShapes(t *testing.T) {
	n := 20
	chain := generate(t, Spec{Kind: "chain", Txs: n, Seed: 5})
	if got := chain.DAG.CriticalPathLen(); got != n {
		t.Errorf("pure chain critical path %d, want %d", got, n)
	}

	hot := generate(t, Spec{Kind: "hotspot", Txs: n, Seed: 5})
	for i, deps := range hot.DAG.Deps {
		if len(deps) != 0 {
			t.Errorf("hotspot tx %d has dependencies %v, want none", i, deps)
		}
	}
	addr := hot.Transactions[0].To
	for i, tx := range hot.Transactions {
		if *tx.To != *addr {
			t.Errorf("hotspot tx %d targets %s, want the single contract %s", i, tx.To, addr)
		}
	}

	dup := generate(t, Spec{Kind: "dupaddr", Txs: n, Seed: 5})
	senders := make(map[types.Address]bool)
	for _, tx := range dup.Transactions {
		senders[tx.From] = true
	}
	if len(senders) > dupAddrPool {
		t.Errorf("dupaddr block uses %d senders, want at most %d", len(senders), dupAddrPool)
	}
	if r := dup.DAG.DependentRatio(); r < 0.9 {
		t.Errorf("dupaddr dependent ratio %.2f, want near-total conflicts", r)
	}
}

// TestSpecDropRenumbersNonces: dropping transactions out of the middle
// of dependency chains keeps the survivors valid (nonces renumbered per
// sender) and the DAG rebuilt for the smaller block.
func TestSpecDropRenumbersNonces(t *testing.T) {
	full := Spec{Kind: "dupaddr", Txs: 12, Seed: 9}
	dropped := full
	dropped.Drop = []int{1, 2, 7}
	genesis, block, err := dropped.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(block.Transactions); got != 9 {
		t.Fatalf("%d transactions after dropping 3 of 12", got)
	}
	nonces := make(map[types.Address]uint64)
	for i, tx := range block.Transactions {
		if tx.Nonce != nonces[tx.From] {
			t.Errorf("tx %d: nonce %d, want %d", i, tx.Nonce, nonces[tx.From])
		}
		nonces[tx.From]++
	}
	if err := VerifyDAG(genesis, block); err != nil {
		t.Errorf("dropped block DAG: %v", err)
	}
	// The chain corner survives mid-chain drops too.
	chain := Spec{Kind: "chain", Txs: 10, Seed: 9, Drop: []int{4}}
	if _, _, err := chain.Generate(); err != nil {
		t.Errorf("mid-chain drop: %v", err)
	}
}

// TestGeneratorDeterminismAcrossGoroutines: identically-seeded
// generators produce byte-identical blocks regardless of which goroutine
// runs them — the property the parallel sweeps and the differential
// harness lean on.
func TestGeneratorDeterminismAcrossGoroutines(t *testing.T) {
	specs := []Spec{
		{Kind: "token", Txs: 32, Dep: 0.6, Seed: 42},
		{Kind: "mixed", Txs: 32, Dep: 0.3, Seed: 42},
		{Kind: "dupaddr", Txs: 32, Seed: 42},
	}
	const workers = 8
	encoded := make([][][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, s := range specs {
				_, block, err := s.Generate()
				if err != nil {
					t.Errorf("worker %d: %s: %v", w, s, err)
					return
				}
				encoded[w] = append(encoded[w], block.EncodeRLP())
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if len(encoded[w]) != len(encoded[0]) {
			t.Fatalf("worker %d produced %d blocks, worker 0 %d", w, len(encoded[w]), len(encoded[0]))
		}
		for i := range encoded[w] {
			if !bytes.Equal(encoded[w][i], encoded[0][i]) {
				t.Errorf("worker %d: %s: block differs from worker 0", w, specs[i])
			}
		}
	}
}
