package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"mtpu/internal/state"
	"mtpu/internal/types"
)

// Spec is a serializable recipe for one synthetic block: every generator
// knob the evaluation sweeps plus the adversarial corner shapes, so a
// workload can be saved, replayed and delta-shrunk byte-identically. The
// differential test harness (internal/difftest) stores Specs as its
// corpus format; mtpu-run -diff replays them.
type Spec struct {
	// Kind selects the generator: "token", "mixed", "sct", "erc20",
	// "batch", or one of the adversarial corners — "chain" (one pure
	// dependency chain), "hotspot" (every transaction invokes a single
	// contract) and "dupaddr" (a tiny sender/recipient pool, so addresses
	// repeat and nonce order chains transactions together).
	Kind string `json:"kind"`
	// Txs is the transaction count before drops.
	Txs int `json:"txs"`
	// Dep is the target dependent-transaction ratio ("token"/"mixed").
	Dep float64 `json:"dep,omitempty"`
	// Share is the SCT or ERC-20 share ("sct"/"erc20").
	Share float64 `json:"share,omitempty"`
	// Seed drives the generator's deterministic randomness.
	Seed int64 `json:"seed"`
	// Accounts sizes the funded account pool; 0 means 4×Txs+64 (the CLI
	// default). Shrinking lowers it to squeeze the address space.
	Accounts int `json:"accounts,omitempty"`
	// Contract names the single contract of a "batch" block.
	Contract string `json:"contract,omitempty"`
	// Drop lists transaction indices (into the originally generated
	// sequence) removed from the block. Per-sender nonces are renumbered
	// after the drop, so the surviving transactions stay valid. This is
	// the delta-shrinker's unit of reduction.
	Drop []int `json:"drop,omitempty"`
}

// SpecKinds lists every valid Spec.Kind, corners last.
var SpecKinds = []string{"token", "mixed", "sct", "erc20", "batch", "chain", "hotspot", "dupaddr"}

// Validate rejects specs no generator can honour.
func (s Spec) Validate() error {
	ok := false
	for _, k := range SpecKinds {
		if s.Kind == k {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("workload: unknown spec kind %q", s.Kind)
	}
	if s.Txs < 1 {
		return fmt.Errorf("workload: spec needs at least one transaction, got %d", s.Txs)
	}
	if math.IsNaN(s.Dep) || math.IsInf(s.Dep, 0) || s.Dep < 0 || s.Dep > 1 {
		// Comparisons alone let NaN through: both bounds checks are
		// false for it, and the flag shorthand reaches here via
		// ParseFloat("NaN", 64).
		return fmt.Errorf("workload: dep ratio %v outside [0,1]", s.Dep)
	}
	if math.IsNaN(s.Share) || math.IsInf(s.Share, 0) || s.Share < 0 || s.Share > 1 {
		return fmt.Errorf("workload: share %v outside [0,1]", s.Share)
	}
	if s.Accounts < 0 {
		return fmt.Errorf("workload: negative account pool %d", s.Accounts)
	}
	if s.Kind == "batch" && s.Contract == "" {
		return fmt.Errorf("workload: batch spec needs a contract name")
	}
	seen := make(map[int]bool, len(s.Drop))
	for _, d := range s.Drop {
		if d < 0 || d >= s.Txs {
			return fmt.Errorf("workload: drop index %d outside the %d generated transactions", d, s.Txs)
		}
		if seen[d] {
			return fmt.Errorf("workload: duplicate drop index %d", d)
		}
		seen[d] = true
	}
	if len(s.Drop) >= s.Txs {
		return fmt.Errorf("workload: dropping all %d transactions", s.Txs)
	}
	return nil
}

// AccountPool resolves the effective account-pool size.
func (s Spec) AccountPool() int {
	if s.Accounts > 0 {
		return s.Accounts
	}
	return 4*s.Txs + 64
}

// NewGeneratorFor builds the generator a Spec's block comes from.
func (s Spec) NewGeneratorFor() *Generator {
	return NewGenerator(s.Seed, s.AccountPool())
}

// Generate materializes the spec: a fresh generator, its genesis, and
// the block (drops applied, nonces renumbered, DAG built). The result is
// a pure function of the Spec — identical specs produce byte-identical
// blocks regardless of call order or goroutine.
func (s Spec) Generate() (*state.StateDB, *types.Block, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	g := s.NewGeneratorFor()
	genesis := g.Genesis()

	var block *types.Block
	switch s.Kind {
	case "token":
		block = g.TokenBlock(s.Txs, s.Dep)
	case "mixed":
		block = g.MixedBlock(s.Txs, s.Dep)
	case "sct":
		block = g.SCTBlock(s.Txs, s.Share)
	case "erc20":
		block = g.ERC20Block(s.Txs, s.Share)
	case "batch":
		if g.byName[s.Contract] == nil {
			return nil, nil, fmt.Errorf("workload: unknown batch contract %q", s.Contract)
		}
		block = g.Batch(g.Contract(s.Contract), s.Txs)
	case "chain":
		block = g.PureChainBlock(s.Txs)
	case "hotspot":
		block = g.HotspotBlock(s.Txs)
	case "dupaddr":
		block = g.DuplicateAddressBlock(s.Txs)
	}

	if len(s.Drop) > 0 {
		applyDrop(block, s.Drop)
	}
	if _, err := BuildDAG(genesis, block); err != nil {
		return nil, nil, err
	}
	return genesis, block, nil
}

// applyDrop removes the dropped transactions and renumbers each sender's
// nonces in block order, keeping the survivors valid against genesis
// (all generated blocks start from nonce 0 for every sender).
func applyDrop(block *types.Block, drop []int) {
	dropped := make(map[int]bool, len(drop))
	for _, d := range drop {
		dropped[d] = true
	}
	kept := block.Transactions[:0]
	nonces := make(map[types.Address]uint64)
	for i, tx := range block.Transactions {
		if dropped[i] {
			continue
		}
		tx.Nonce = nonces[tx.From]
		nonces[tx.From]++
		kept = append(kept, tx)
	}
	block.Transactions = kept
	block.DAG = nil // stale after the drop; Generate rebuilds it
}

// ParseSpec strictly decodes a Spec (unknown fields rejected, so corpus
// files cannot silently carry typo'd knobs) and validates it.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// String renders the spec as its canonical single-line JSON.
func (s Spec) String() string {
	buf, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf("spec{%s/%d}", s.Kind, s.Txs)
	}
	return string(buf)
}

// PureChainBlock builds the adversarial "one pure chain" corner: n token
// transfers forming a single dependency chain (each transaction spends
// the balance the previous one credited), so the DAG's critical path is
// the whole block and any parallel schedule degenerates to sequential.
func (g *Generator) PureChainBlock(n int) *types.Block {
	g.beginBlock()
	token := g.Contract("TetherUSD")
	from := g.freshAccount()
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		to := g.freshAccount()
		txs = append(txs, g.call(from, token, 0, "transfer", to, uint64(10)))
		from = to
	}
	return types.NewBlock(g.Header(), txs)
}

// HotspotBlock builds the single-contract-hotspot corner: every
// transaction invokes one contract (TetherUSD transfers from fresh
// senders). The transactions are pairwise independent, so the scheduler
// sees maximal parallelism while the redundancy/hotspot machinery sees a
// 100% skewed contract distribution.
func (g *Generator) HotspotBlock(n int) *types.Block {
	g.beginBlock()
	token := g.Contract("TetherUSD")
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		from, to := g.freshAccount(), g.freshAccount()
		txs = append(txs, g.call(from, token, 0, "transfer", to, uint64(10)))
	}
	return types.NewBlock(g.Header(), txs)
}

// dupAddrPool is the sender/recipient pool size of the duplicate-address
// corner: small enough that every block reuses each address many times.
const dupAddrPool = 3

// DuplicateAddressBlock builds the duplicate-address corner: a pool of
// only dupAddrPool senders and recipients, so the same address appears
// in many transactions — consecutive transactions of one sender chain
// through its nonce, and shared balance slots conflict across senders.
// The resulting DAG is dense and full of equal-priority ties, the shape
// most likely to expose nondeterministic tie-breaking.
func (g *Generator) DuplicateAddressBlock(n int) *types.Block {
	g.beginBlock()
	token := g.Contract("TetherUSD")
	pool := make([]types.Address, dupAddrPool)
	for i := range pool {
		pool[i] = g.freshAccount()
	}
	txs := make([]*types.Transaction, 0, n)
	for i := 0; i < n; i++ {
		from := pool[i%dupAddrPool]
		to := pool[(i+1+g.rng.Intn(dupAddrPool-1))%dupAddrPool]
		txs = append(txs, g.call(from, token, 0, "transfer", to, uint64(10)))
	}
	return types.NewBlock(g.Header(), txs)
}
