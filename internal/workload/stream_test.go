package workload

import (
	"testing"
)

func TestParseStreamSpec(t *testing.T) {
	cases := []struct {
		in   string
		want StreamSpec
	}{
		{"", StreamSpec{Blocks: 100, Txs: 64, Dep: 0.3, Seed: 1}},
		{"blocks=500,txs=32", StreamSpec{Blocks: 500, Txs: 32, Dep: 0.3, Seed: 1}},
		{"blocks=8,txs=4,dep=0.9,seed=42,accounts=100", StreamSpec{Blocks: 8, Txs: 4, Dep: 0.9, Seed: 42, Accounts: 100}},
		// JSON decoding starts from the same defaults the shorthand uses,
		// so absent keys (dep here) keep their default.
		{`{"blocks":5,"txs":10,"seed":2}`, StreamSpec{Blocks: 5, Txs: 10, Dep: 0.3, Seed: 2}},
	}
	for _, c := range cases {
		got, err := ParseStreamSpec(c.in)
		if err != nil {
			t.Errorf("ParseStreamSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseStreamSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}

	bad := []string{
		"blocks=0", "txs=-1", "dep=1.5", "bogus=1", "blocks", "blocks=x",
		`{"blocks":5,"txs":10,"seed":2,"nope":1}`, `{"blocks":0}`,
	}
	for _, in := range bad {
		if _, err := ParseStreamSpec(in); err == nil {
			t.Errorf("ParseStreamSpec(%q) accepted invalid spec", in)
		}
	}
}

func TestStreamSpecRoundTrip(t *testing.T) {
	spec := StreamSpec{Blocks: 7, Txs: 9, Dep: 0.25, Seed: 13, Accounts: 80}
	got, err := ParseStreamSpec(spec.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", spec.String(), err)
	}
	if got != spec {
		t.Fatalf("round trip %q = %+v, want %+v", spec.String(), got, spec)
	}
}

// TestStreamDeterminism proves the same spec yields byte-identical block
// streams — the property that makes `mtpu-serve -source` reproducible.
func TestStreamDeterminism(t *testing.T) {
	spec := StreamSpec{Blocks: 5, Txs: 16, Dep: 0.5, Seed: 77}
	a, err := spec.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	b, err := spec.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if a.Genesis().Digest() != b.Genesis().Digest() {
		t.Fatal("same spec, different genesis")
	}
	seen := make(map[string]bool)
	for i := 0; i < spec.Blocks; i++ {
		ba, oka := a.Next()
		bb, okb := b.Next()
		if !oka || !okb {
			t.Fatalf("stream ended early at block %d", i)
		}
		if ba.Hash() != bb.Hash() {
			t.Fatalf("block %d differs between identical specs", i)
		}
		if ba.DAG != nil {
			t.Fatalf("block %d emitted with a DAG; decoding is the consumer's job", i)
		}
		if seen[ba.Hash().String()] {
			t.Fatalf("block %d repeats an earlier block", i)
		}
		seen[ba.Hash().String()] = true
	}
	if _, ok := a.Next(); ok {
		t.Fatal("stream produced more blocks than the spec asked for")
	}
	if a.Remaining() != 0 {
		t.Fatalf("Remaining() = %d after exhaustion", a.Remaining())
	}
}
