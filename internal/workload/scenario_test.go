package workload

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mtpu/internal/types"
)

func TestParseScenarioSpec(t *testing.T) {
	cases := []struct {
		in   string
		want ScenarioSpec
	}{
		{"scenario=dex", ScenarioSpec{Scenario: "dex", Blocks: 100, Txs: 64, Skew: 1.0, Seed: 1}},
		{"scenario=erc20-mix,blocks=500,txs=32", ScenarioSpec{Scenario: "erc20-mix", Blocks: 500, Txs: 32, Skew: 1.0, Seed: 1}},
		{"scenario=oracle,blocks=8,txs=4,skew=0.9,seed=42,accounts=100",
			ScenarioSpec{Scenario: "oracle", Blocks: 8, Txs: 4, Skew: 0.9, Seed: 42, Accounts: 100}},
		// JSON decoding starts from the same defaults the shorthand uses,
		// so absent keys (skew here) keep their default.
		{`{"scenario":"nft-mint","blocks":5,"txs":10,"seed":2}`,
			ScenarioSpec{Scenario: "nft-mint", Blocks: 5, Txs: 10, Skew: 1.0, Seed: 2}},
		{`{"scenario":"airdrop","blocks":3,"txs":6,"skew":0,"seed":9}`,
			ScenarioSpec{Scenario: "airdrop", Blocks: 3, Txs: 6, Skew: 0, Seed: 9}},
	}
	for _, c := range cases {
		got, err := ParseScenarioSpec(c.in)
		if err != nil {
			t.Errorf("ParseScenarioSpec(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseScenarioSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}

	bad := []string{
		"", "scenario=bogus", "scenario=dex,blocks=0", "scenario=dex,txs=-1",
		"scenario=dex,skew=-0.1", "scenario=dex,skew=9", "scenario=dex,accounts=-1",
		"scenario=dex,nope=1", "scenario", "scenario=dex,blocks=x",
		// Non-finite skew must not slip past Validate's range check.
		"scenario=dex,skew=NaN", "scenario=dex,skew=+Inf", "scenario=dex,skew=-Inf",
		`{"scenario":"dex","nope":1}`, `{"scenario":"dex","blocks":0}`, `{"blocks":5}`,
	}
	for _, in := range bad {
		if _, err := ParseScenarioSpec(in); err == nil {
			t.Errorf("ParseScenarioSpec(%q) accepted invalid spec", in)
		}
	}
}

func TestScenarioSpecRoundTrip(t *testing.T) {
	spec := ScenarioSpec{Scenario: "dex", Blocks: 7, Txs: 9, Skew: 1.25, Seed: 13, Accounts: 80}
	got, err := ParseScenarioSpec(spec.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", spec.String(), err)
	}
	if got != spec {
		t.Fatalf("round trip %q = %+v, want %+v", spec.String(), got, spec)
	}
}

// TestParseSourceSpec proves the dispatch seam: a scenario key (in
// either form) selects ScenarioSpec, anything else the legacy
// StreamSpec, so `mtpu-serve -source` accepts both transparently.
func TestParseSourceSpec(t *testing.T) {
	cases := []struct {
		in       string
		scenario bool
	}{
		{"scenario=dex,blocks=4", true},
		{`{"scenario":"oracle","blocks":4,"txs":8,"seed":3}`, true},
		{"blocks=4,txs=8", false},
		{`{"blocks":4,"txs":8,"seed":3}`, false},
		{"", false},
	}
	for _, c := range cases {
		got, err := ParseSourceSpec(c.in)
		if err != nil {
			t.Errorf("ParseSourceSpec(%q): %v", c.in, err)
			continue
		}
		_, isScenario := got.(ScenarioSpec)
		if isScenario != c.scenario {
			t.Errorf("ParseSourceSpec(%q) = %T, want scenario=%v", c.in, got, c.scenario)
		}
	}
	bad := []string{"scenario=bogus", "blocks=0", `{"scenario":"dex","blocks":0}`}
	for _, in := range bad {
		if _, err := ParseSourceSpec(in); err == nil {
			t.Errorf("ParseSourceSpec(%q) accepted invalid spec", in)
		}
	}
}

// TestScenarioDeterminism proves every scenario yields byte-identical
// block streams for one seed — across independent generator instances
// and across the JSON and shorthand spec forms.
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range Scenarios {
		t.Run(name, func(t *testing.T) {
			shorthand := fmt.Sprintf("scenario=%s,blocks=4,txs=12,skew=1.2,seed=7", name)
			jsonForm := fmt.Sprintf(`{"scenario":%q,"blocks":4,"txs":12,"skew":1.2,"seed":7}`, name)
			sa, err := ParseScenarioSpec(shorthand)
			if err != nil {
				t.Fatalf("parse shorthand: %v", err)
			}
			sb, err := ParseScenarioSpec(jsonForm)
			if err != nil {
				t.Fatalf("parse JSON: %v", err)
			}
			if sa != sb {
				t.Fatalf("spec forms disagree: %+v vs %+v", sa, sb)
			}
			a, err := sa.Open()
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			b, err := sb.Open()
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if a.Genesis().Digest() != b.Genesis().Digest() {
				t.Fatal("same spec, different genesis")
			}
			seen := make(map[string]bool)
			for i := 0; i < sa.Blocks; i++ {
				ba, oka := a.Next()
				bb, okb := b.Next()
				if !oka || !okb {
					t.Fatalf("stream ended early at block %d", i)
				}
				if ba.Hash() != bb.Hash() {
					t.Fatalf("block %d differs between identical specs", i)
				}
				if ba.DAG != nil {
					t.Fatalf("block %d emitted with a DAG; decoding is the consumer's job", i)
				}
				if seen[ba.Hash().String()] {
					t.Fatalf("block %d repeats an earlier block", i)
				}
				seen[ba.Hash().String()] = true
			}
			if _, ok := a.Next(); ok {
				t.Fatal("stream produced more blocks than the spec asked for")
			}
			if a.Remaining() != 0 {
				t.Fatalf("Remaining() = %d after exhaustion", a.Remaining())
			}
		})
	}
}

// TestScenarioChainsExecute proves every scenario's stream is a valid
// chain: executed in order against the evolving state, every
// transaction succeeds (no reverts, no nonce gaps) and the per-block
// conflict DAGs derive cleanly.
func TestScenarioChainsExecute(t *testing.T) {
	for _, name := range Scenarios {
		t.Run(name, func(t *testing.T) {
			spec := ScenarioSpec{Scenario: name, Blocks: 3, Txs: 16, Skew: 1.2, Seed: 5}
			st, err := spec.Open()
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			var blocks []*types.Block
			for b, ok := st.Next(); ok; b, ok = st.Next() {
				blocks = append(blocks, b)
			}
			if len(blocks) != spec.Blocks {
				t.Fatalf("got %d blocks, want %d", len(blocks), spec.Blocks)
			}
			for i, b := range blocks {
				if want := uint64(BlockNumber + i); b.Header.Height != want {
					t.Fatalf("block %d height %d, want %d", i, b.Header.Height, want)
				}
			}
			if err := BuildChainDAG(st.Genesis(), blocks); err != nil {
				t.Fatalf("chain does not execute: %v", err)
			}
		})
	}
}

// TestZipfSampler checks the CDF sampler against its own analytic
// top-share and the uniform degenerate case.
func TestZipfSampler(t *testing.T) {
	z := newZipf(1000, 1.2)
	rng := rand.New(rand.NewSource(1))
	const draws = 200_000
	top := int(math.Ceil(0.01 * 1000))
	hits := 0
	for i := 0; i < draws; i++ {
		if z.sample(rng) < top {
			hits++
		}
	}
	got := float64(hits) / draws
	want := z.topShare(0.01)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("top-1%% empirical share %.4f, analytic %.4f", got, want)
	}
	if want < 0.3 {
		t.Fatalf("s=1.2 top-1%% share %.4f suspiciously low — sampler not skewed", want)
	}

	u := newZipf(1000, 0)
	if s := u.topShare(0.01); math.Abs(s-0.01) > 1e-9 {
		t.Fatalf("uniform top-1%% share %.4f, want 0.01", s)
	}
}

// TestScenarioZipfSkew proves generated traffic actually carries the
// configured skew: the hottest 1% of the account pool sends the
// analytic Zipf share of erc20-mix transactions, within tolerance.
func TestScenarioZipfSkew(t *testing.T) {
	spec := ScenarioSpec{Scenario: "erc20-mix", Blocks: 50, Txs: 64, Skew: 1.2, Seed: 11}
	st, err := spec.Open()
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	counts := make(map[types.Address]int)
	total := 0
	for b, ok := st.Next(); ok; b, ok = st.Next() {
		for _, tx := range b.Transactions {
			counts[tx.From]++
			total++
		}
	}
	pool := spec.AccountPool()
	top := int(math.Ceil(0.01 * float64(pool)))
	// Popularity is rank-ordered: rank k is accountAddr(k).
	hot := 0
	for k := 0; k < top; k++ {
		hot += counts[accountAddr(k)]
	}
	got := float64(hot) / float64(total)
	want := newZipf(pool, spec.Skew).topShare(0.01)
	if math.Abs(got-want) > 0.08 {
		t.Fatalf("top-1%% accounts sent %.3f of traffic, analytic share %.3f", got, want)
	}
	if got < 2.0/float64(pool)*float64(top) {
		t.Fatalf("top-1%% share %.3f barely above uniform — skew not applied", got)
	}
}

// TestSpecValidateNonFinite pins the Validate bugfix: NaN slipped past
// `Dep < 0 || Dep > 1` (both comparisons are false for NaN) in Spec and
// StreamSpec alike, and ±Inf passes one bound each.
func TestSpecValidateNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := (Spec{Kind: "token", Txs: 4, Seed: 1, Dep: v}).Validate(); err == nil {
			t.Errorf("Spec.Validate accepted Dep=%v", v)
		}
		if err := (Spec{Kind: "sct", Txs: 4, Seed: 1, Share: v}).Validate(); err == nil {
			t.Errorf("Spec.Validate accepted Share=%v", v)
		}
		if err := (StreamSpec{Blocks: 2, Txs: 4, Seed: 1, Dep: v}).Validate(); err == nil {
			t.Errorf("StreamSpec.Validate accepted Dep=%v", v)
		}
	}
	// The flag shorthand reaches Validate with these values because
	// strconv.ParseFloat accepts "NaN" and "±Inf" spellings.
	for _, in := range []string{"dep=NaN", "dep=+Inf", "dep=-Inf", "dep=Inf"} {
		if _, err := ParseStreamSpec(in); err == nil {
			t.Errorf("ParseStreamSpec(%q) accepted non-finite dep", in)
		}
	}
	// JSON cannot express NaN/Inf literals, so the strict decoder already
	// rejects them at the syntax layer — pin that too.
	if _, err := ParseStreamSpec(`{"blocks":2,"txs":4,"dep":NaN,"seed":1}`); err == nil {
		t.Error("JSON NaN literal decoded")
	}
}
