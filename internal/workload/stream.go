package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"mtpu/internal/state"
	"mtpu/internal/types"
)

// StreamSpec is a serializable recipe for a block stream: Blocks
// consecutive token blocks of Txs transactions each at dependent ratio
// Dep, deterministically derived from Seed. It feeds `mtpu-serve
// -source` and the stream unit tests — the block-stream face of the
// same generator machinery Spec exposes for single blocks.
//
// The stream is a chain: account nonces and balances carry over from
// block to block (exactly like Generator.ChainBlocks), so block N+1 is
// only valid against the state block N left behind — the validator-node
// scenario the service's multi-version state layer serves. Given one
// Seed, the whole chain is deterministic, whether expressed as JSON or
// flag shorthand.
type StreamSpec struct {
	// Blocks is the stream length.
	Blocks int `json:"blocks"`
	// Txs is the per-block transaction count.
	Txs int `json:"txs"`
	// Dep is the target dependent-transaction ratio per block.
	Dep float64 `json:"dep,omitempty"`
	// Seed drives the generator's deterministic randomness.
	Seed int64 `json:"seed"`
	// Accounts sizes the funded account pool; 0 means 4×Txs+64.
	Accounts int `json:"accounts,omitempty"`
}

// Validate rejects stream specs no generator can honour.
func (s StreamSpec) Validate() error {
	if s.Blocks < 1 {
		return fmt.Errorf("workload: stream needs at least one block, got %d", s.Blocks)
	}
	if s.Txs < 1 {
		return fmt.Errorf("workload: stream needs at least one transaction per block, got %d", s.Txs)
	}
	if math.IsNaN(s.Dep) || math.IsInf(s.Dep, 0) || s.Dep < 0 || s.Dep > 1 {
		// Comparisons alone let NaN through: both bounds checks are
		// false for it, and the flag shorthand reaches here via
		// ParseFloat("NaN", 64).
		return fmt.Errorf("workload: stream dep ratio %v outside [0,1]", s.Dep)
	}
	if s.Accounts < 0 {
		return fmt.Errorf("workload: negative stream account pool %d", s.Accounts)
	}
	return nil
}

// AccountPool resolves the effective account-pool size.
func (s StreamSpec) AccountPool() int {
	if s.Accounts > 0 {
		return s.Accounts
	}
	return 4*s.Txs + 64
}

// String renders the spec in the flag shorthand ParseStreamSpec accepts.
func (s StreamSpec) String() string {
	out := fmt.Sprintf("blocks=%d,txs=%d,dep=%g,seed=%d", s.Blocks, s.Txs, s.Dep, s.Seed)
	if s.Accounts > 0 {
		out += fmt.Sprintf(",accounts=%d", s.Accounts)
	}
	return out
}

// Describe renders the ledger-key fragment identifying this workload.
func (s StreamSpec) Describe() string {
	return fmt.Sprintf("blocks%d-txs%d-dep%.2f", s.Blocks, s.Txs, s.Dep)
}

// OpenSource satisfies SourceSpec.
func (s StreamSpec) OpenSource() (BlockSource, error) { return s.Open() }

// ParseStreamSpec decodes a stream spec from either strict JSON
// (`{"blocks":500,"txs":64,"dep":0.3,"seed":1}`) or the flag shorthand
// `blocks=500,txs=64,dep=0.3,seed=1` (keys optional, defaults applied),
// then validates it.
func ParseStreamSpec(text string) (StreamSpec, error) {
	s := StreamSpec{Blocks: 100, Txs: 64, Dep: 0.3, Seed: 1}
	text = strings.TrimSpace(text)
	if strings.HasPrefix(text, "{") {
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return StreamSpec{}, fmt.Errorf("workload: decoding stream spec: %w", err)
		}
		return s, s.Validate()
	}
	for _, kv := range strings.Split(text, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return StreamSpec{}, fmt.Errorf("workload: stream spec field %q is not key=value", kv)
		}
		var err error
		switch key {
		case "blocks":
			s.Blocks, err = strconv.Atoi(val)
		case "txs":
			s.Txs, err = strconv.Atoi(val)
		case "dep":
			s.Dep, err = strconv.ParseFloat(val, 64)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "accounts":
			s.Accounts, err = strconv.Atoi(val)
		default:
			return StreamSpec{}, fmt.Errorf("workload: unknown stream spec key %q (valid: blocks, txs, dep, seed, accounts)", key)
		}
		if err != nil {
			return StreamSpec{}, fmt.Errorf("workload: stream spec %s=%q: %w", key, val, err)
		}
	}
	return s, s.Validate()
}

// Stream generates the spec's blocks one at a time. It is not safe for
// concurrent use; a pipeline's single ingest producer pulls from it.
type Stream struct {
	spec    StreamSpec
	gen     *Generator
	genesis *state.StateDB
	next    int
}

// Open validates the spec and builds its generator and genesis.
func (s StreamSpec) Open() (*Stream, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := NewGenerator(s.Seed, s.AccountPool())
	// One beginBlock for the whole stream: nonces and balances then
	// carry across Next calls, producing a chained block sequence.
	g.beginBlock()
	return &Stream{spec: s, gen: g, genesis: g.Genesis()}, nil
}

// Genesis returns the chain's pre-state: block 1 executes against it,
// and each later block against its predecessor's post-state (read-only;
// copy before mutating).
func (st *Stream) Genesis() *state.StateDB { return st.genesis }

// Spec returns the stream's recipe.
func (st *Stream) Spec() StreamSpec { return st.spec }

// Remaining reports how many blocks Next will still produce.
func (st *Stream) Remaining() int { return st.spec.Blocks - st.next }

// Next produces the chain's next block, or (nil, false) once Blocks
// blocks have been produced. Nonces and balances continue from the
// previous block, so blocks are only valid executed in order against
// evolving state. Blocks are emitted without a conflict DAG: deriving
// it (along with traces and plans) is the prefetch/decode stage's job,
// exactly as a block arriving over the network would be handled.
func (st *Stream) Next() (*types.Block, bool) {
	if st.next >= st.spec.Blocks {
		return nil, false
	}
	header := st.gen.Header()
	header.Height += uint64(st.next)
	block := types.NewBlock(header, st.gen.tokenTxs(st.spec.Txs, st.spec.Dep))
	block.DAG = nil
	st.next++
	return block, true
}
