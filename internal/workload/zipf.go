package workload

import (
	"math"
	"math/rand"
	"sort"
)

// zipfDist is a deterministic Zipf(s) sampler over ranks 0..n-1: rank k
// is drawn with probability proportional to (k+1)^-s. Unlike
// rand.NewZipf it accepts any s >= 0 — mainnet account/contract
// popularity skews sit around 0.9–1.2, below the s > 1 floor of the
// standard-library sampler — and it samples by binary search over the
// precomputed CDF, so identical seeds yield identical rank sequences on
// every platform.
type zipfDist struct {
	cum []float64 // cum[k] = sum of weights of ranks 0..k
}

// newZipf builds the sampler. n must be >= 1; s = 0 degenerates to the
// uniform distribution.
func newZipf(n int, s float64) *zipfDist {
	if n < 1 {
		panic("workload: zipf over an empty rank set")
	}
	z := &zipfDist{cum: make([]float64, n)}
	total := 0.0
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		z.cum[k] = total
	}
	return z
}

// sample draws one rank using the generator's randomness.
func (z *zipfDist) sample(rng *rand.Rand) int {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

// topShare returns the analytic probability mass of the hottest
// ceil(frac·n) ranks — the expected share of draws they receive, the
// reference value of the skew sanity tests.
func (z *zipfDist) topShare(frac float64) float64 {
	n := len(z.cum)
	top := int(math.Ceil(frac * float64(n)))
	if top < 1 {
		top = 1
	}
	if top > n {
		top = n
	}
	return z.cum[top-1] / z.cum[n-1]
}
