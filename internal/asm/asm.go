// Package asm provides an EVM assembler and disassembler. The contract
// suite (internal/contracts) is authored against the programmatic Builder,
// which supports labels resolved in a second pass; the text assembler
// accepts the same mnemonics for the evm-asm CLI and tests.
package asm

import (
	"fmt"
	"sort"

	"mtpu/internal/evm"
	"mtpu/internal/uint256"
)

// Builder incrementally constructs bytecode. Label references are emitted
// as fixed-width PUSH2 immediates and patched when Build is called, so
// forward references are allowed.
type Builder struct {
	code   []byte
	labels map[string]int // label -> code offset of its JUMPDEST
	refs   map[int]string // offset of a 2-byte immediate -> label
	errs   []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		refs:   make(map[int]string),
	}
}

// Op appends raw opcodes with no immediates.
func (b *Builder) Op(ops ...evm.Opcode) *Builder {
	for _, op := range ops {
		if op.IsPush() {
			b.errs = append(b.errs, fmt.Errorf("asm: %s requires an immediate; use Push", op))
			continue
		}
		b.code = append(b.code, byte(op))
	}
	return b
}

// Push appends the smallest PUSHn holding the big-endian bytes of v.
func (b *Builder) Push(v *uint256.Int) *Builder {
	return b.PushBytes(v.Bytes())
}

// PushInt appends a push of a uint64 constant.
func (b *Builder) PushInt(v uint64) *Builder {
	return b.Push(uint256.NewInt(v))
}

// PushBytes appends PUSHn with the given immediate (1-32 bytes; empty
// pushes a zero via PUSH1 0x00).
func (b *Builder) PushBytes(imm []byte) *Builder {
	if len(imm) == 0 {
		imm = []byte{0}
	}
	if len(imm) > 32 {
		b.errs = append(b.errs, fmt.Errorf("asm: push immediate of %d bytes", len(imm)))
		return b
	}
	b.code = append(b.code, byte(evm.PUSH1)+byte(len(imm)-1))
	b.code = append(b.code, imm...)
	return b
}

// Label defines a jump target here, emitting a JUMPDEST.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.code)
	b.code = append(b.code, byte(evm.JUMPDEST))
	return b
}

// PushLabel appends PUSH2 <label-address>, patched at Build time.
func (b *Builder) PushLabel(name string) *Builder {
	b.code = append(b.code, byte(evm.PUSH2))
	b.refs[len(b.code)] = name
	b.code = append(b.code, 0, 0)
	return b
}

// Jump emits an unconditional jump to the label.
func (b *Builder) Jump(name string) *Builder {
	return b.PushLabel(name).Op(evm.JUMP)
}

// JumpI emits a conditional jump to the label (consumes the condition on
// the stack).
func (b *Builder) JumpI(name string) *Builder {
	return b.PushLabel(name).Op(evm.JUMPI)
}

// Raw appends pre-assembled bytes verbatim.
func (b *Builder) Raw(code []byte) *Builder {
	b.code = append(b.code, code...)
	return b
}

// Len returns the current code size in bytes.
func (b *Builder) Len() int { return len(b.code) }

// Build patches label references and returns the final bytecode.
func (b *Builder) Build() ([]byte, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	out := append([]byte(nil), b.code...)
	for off, name := range b.refs {
		target, ok := b.labels[name]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", name)
		}
		if target > 0xffff {
			return nil, fmt.Errorf("asm: label %q at %d exceeds PUSH2 range", name, target)
		}
		out[off] = byte(target >> 8)
		out[off+1] = byte(target)
	}
	return out, nil
}

// MustBuild is Build that panics on error, for static contract definitions.
func (b *Builder) MustBuild() []byte {
	code, err := b.Build()
	if err != nil {
		panic(err)
	}
	return code
}

// Instruction is one decoded instruction for disassembly and analysis.
type Instruction struct {
	PC  int
	Op  evm.Opcode
	Imm []byte // push immediate, nil otherwise
}

// Disassemble decodes code into instructions. Truncated push immediates at
// the end of code are zero-padded, matching interpreter semantics.
func Disassemble(code []byte) []Instruction {
	var out []Instruction
	for pc := 0; pc < len(code); {
		op := evm.Opcode(code[pc])
		inst := Instruction{PC: pc, Op: op}
		size := op.PushSize()
		if size > 0 {
			imm := make([]byte, size)
			copy(imm, code[pc+1:min(pc+1+size, len(code))])
			inst.Imm = imm
		}
		out = append(out, inst)
		pc += 1 + size
	}
	return out
}

// String formats an instruction like "0x0042 PUSH2 0x00b6".
func (i Instruction) String() string {
	if len(i.Imm) > 0 {
		return fmt.Sprintf("0x%04x %s 0x%x", i.PC, i.Op, i.Imm)
	}
	return fmt.Sprintf("0x%04x %s", i.PC, i.Op)
}

// Format renders a full disassembly listing.
func Format(code []byte) string {
	insts := Disassemble(code)
	var out []byte
	for _, in := range insts {
		out = append(out, in.String()...)
		out = append(out, '\n')
	}
	return string(out)
}

// Stats summarises an instruction stream by functional unit, the analysis
// behind Table 6.
func Stats(code []byte) map[evm.FuncUnit]int {
	counts := make(map[evm.FuncUnit]int)
	for _, in := range Disassemble(code) {
		counts[in.Op.Unit()]++
	}
	return counts
}

// SortedUnits returns the functional units of a Stats map in Table 3 order.
func SortedUnits(stats map[evm.FuncUnit]int) []evm.FuncUnit {
	units := make([]evm.FuncUnit, 0, len(stats))
	for u := range stats {
		units = append(units, u)
	}
	sort.Slice(units, func(i, j int) bool { return units[i] < units[j] })
	return units
}
