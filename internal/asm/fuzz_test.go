package asm

import "testing"

// FuzzAssemble asserts the text assembler never panics and that accepted
// programs disassemble without error.
func FuzzAssemble(f *testing.F) {
	f.Add("PUSH1 0x60\nPUSH1 0x40\nMSTORE")
	f.Add("start:\nPUSH @start\nJUMP")
	f.Add("; comment only")
	f.Add("ADD\nMUL\nSTOP")
	f.Add("PUSH 123456789")
	f.Fuzz(func(t *testing.T, src string) {
		code, err := Assemble(src)
		if err != nil {
			return
		}
		insts := Disassemble(code)
		total := 0
		for _, in := range insts {
			total += 1 + len(in.Imm)
		}
		if total != len(code) {
			t.Fatalf("disassembly covers %d of %d bytes", total, len(code))
		}
	})
}

// FuzzDisassemble asserts arbitrary bytes always disassemble totally.
func FuzzDisassemble(f *testing.F) {
	f.Add([]byte{0x60, 0x01, 0x01})
	f.Add([]byte{0x7f}) // truncated PUSH32
	f.Add([]byte{0xfe, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, code []byte) {
		insts := Disassemble(code)
		pos := 0
		for _, in := range insts {
			if in.PC != pos {
				t.Fatalf("pc gap: %d vs %d", in.PC, pos)
			}
			pos += 1 + in.Op.PushSize()
		}
	})
}
