package asm

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"mtpu/internal/evm"
	"mtpu/internal/uint256"
)

// Assemble parses mnemonic assembly text into bytecode.
//
// Syntax, one statement per line:
//
//	; comment or // comment
//	label:              — defines a JUMPDEST
//	PUSH1 0x60          — push with hex immediate (width checked)
//	PUSH 1234           — auto-sized push of a decimal or hex constant
//	PUSH @label         — PUSH2 of a label address
//	ADD                 — any plain mnemonic
//
// Labels may be referenced before they are defined.
func Assemble(src string) ([]byte, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if name == "" {
				return nil, fmt.Errorf("asm: line %d: empty label", lineNo+1)
			}
			b.Label(name)
			continue
		}
		fields := strings.Fields(line)
		mnemonic := strings.ToUpper(fields[0])

		if mnemonic == "PUSH" || strings.HasPrefix(mnemonic, "PUSH") {
			if err := assemblePush(b, mnemonic, fields[1:], lineNo+1); err != nil {
				return nil, err
			}
			continue
		}
		op, ok := evm.OpcodeByName(mnemonic)
		if !ok {
			return nil, fmt.Errorf("asm: line %d: unknown mnemonic %q", lineNo+1, fields[0])
		}
		if len(fields) > 1 {
			return nil, fmt.Errorf("asm: line %d: %s takes no operand", lineNo+1, mnemonic)
		}
		b.Op(op)
	}
	return b.Build()
}

func stripComment(line string) string {
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func assemblePush(b *Builder, mnemonic string, args []string, line int) error {
	if len(args) != 1 {
		return fmt.Errorf("asm: line %d: %s needs exactly one operand", line, mnemonic)
	}
	arg := args[0]

	if strings.HasPrefix(arg, "@") {
		if mnemonic != "PUSH" && mnemonic != "PUSH2" {
			return fmt.Errorf("asm: line %d: label operands need PUSH or PUSH2", line)
		}
		b.PushLabel(arg[1:])
		return nil
	}

	imm, err := parseImmediate(arg)
	if err != nil {
		return fmt.Errorf("asm: line %d: %v", line, err)
	}

	if mnemonic == "PUSH" {
		b.PushBytes(imm)
		return nil
	}
	// Explicit width PUSHn: left-pad or reject.
	n, err := strconv.Atoi(strings.TrimPrefix(mnemonic, "PUSH"))
	if err != nil || n < 1 || n > 32 {
		return fmt.Errorf("asm: line %d: bad push mnemonic %q", line, mnemonic)
	}
	if len(imm) > n {
		return fmt.Errorf("asm: line %d: immediate %q exceeds %d bytes", line, arg, n)
	}
	padded := make([]byte, n)
	copy(padded[n-len(imm):], imm)
	b.code = append(b.code, byte(evm.PUSH1)+byte(n-1))
	b.code = append(b.code, padded...)
	return nil
}

func parseImmediate(s string) ([]byte, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		hx := s[2:]
		if len(hx)%2 == 1 {
			hx = "0" + hx
		}
		imm, err := hex.DecodeString(hx)
		if err != nil {
			return nil, fmt.Errorf("bad hex immediate %q", s)
		}
		if len(imm) == 0 {
			imm = []byte{0}
		}
		return imm, nil
	}
	var v uint256.Int
	if err := v.SetFromDecimal(s); err != nil {
		return nil, fmt.Errorf("bad immediate %q", s)
	}
	imm := v.Bytes()
	if len(imm) == 0 {
		imm = []byte{0}
	}
	return imm, nil
}
