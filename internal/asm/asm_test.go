package asm

import (
	"bytes"
	"math/rand"
	"testing"

	"mtpu/internal/evm"
	"mtpu/internal/uint256"
)

func TestBuilderBasics(t *testing.T) {
	code := NewBuilder().
		PushInt(5).
		PushInt(3).
		Op(evm.ADD).
		MustBuild()
	want := []byte{byte(evm.PUSH1), 5, byte(evm.PUSH1), 3, byte(evm.ADD)}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x, want %x", code, want)
	}
}

func TestBuilderPushSizing(t *testing.T) {
	b := NewBuilder()
	b.PushInt(0)                                // PUSH1 0x00
	b.PushInt(0xff)                             // PUSH1
	b.PushInt(0x100)                            // PUSH2
	b.Push(uint256.MustFromHex("0x123456789a")) // PUSH5
	code := b.MustBuild()
	wantOps := []evm.Opcode{evm.PUSH1, evm.PUSH1, evm.PUSH2, evm.PUSH5}
	insts := Disassemble(code)
	if len(insts) != len(wantOps) {
		t.Fatalf("%d instructions", len(insts))
	}
	for i, in := range insts {
		if in.Op != wantOps[i] {
			t.Errorf("inst %d = %s, want %s", i, in.Op, wantOps[i])
		}
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder()
	b.Jump("end")
	b.Op(evm.STOP)
	b.Label("end")
	code, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Layout: PUSH2 addr, JUMP, STOP, JUMPDEST → JUMPDEST at offset 5.
	if code[1] != 0 || code[2] != 5 {
		t.Fatalf("label patched to %d, want 5", int(code[1])<<8|int(code[2]))
	}
	if evm.Opcode(code[5]) != evm.JUMPDEST {
		t.Fatalf("no JUMPDEST at target")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().PushLabel("nowhere").Build(); err == nil {
		t.Error("undefined label accepted")
	}
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewBuilder().Op(evm.PUSH1).Build(); err == nil {
		t.Error("bare PUSH accepted via Op")
	}
	if _, err := NewBuilder().PushBytes(make([]byte, 33)).Build(); err == nil {
		t.Error("33-byte immediate accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	NewBuilder().PushLabel("missing").MustBuild()
}

func TestAssembleText(t *testing.T) {
	code, err := Assemble(`
; a comment
PUSH1 0x05   // trailing comment
PUSH1 3
ADD
start:
PUSH @start
JUMP
`)
	if err != nil {
		t.Fatal(err)
	}
	insts := Disassemble(code)
	ops := []evm.Opcode{evm.PUSH1, evm.PUSH1, evm.ADD, evm.JUMPDEST, evm.PUSH2, evm.JUMP}
	if len(insts) != len(ops) {
		t.Fatalf("%d instructions: %v", len(insts), insts)
	}
	for i, in := range insts {
		if in.Op != ops[i] {
			t.Errorf("inst %d = %s", i, in.Op)
		}
	}
	// PUSH @start must point at the JUMPDEST (offset 5).
	if insts[4].Imm[1] != 5 {
		t.Errorf("label immediate %x", insts[4].Imm)
	}
}

func TestAssembleAutoSizedPush(t *testing.T) {
	code, err := Assemble("PUSH 70000") // needs 3 bytes
	if err != nil {
		t.Fatal(err)
	}
	if evm.Opcode(code[0]) != evm.PUSH3 {
		t.Fatalf("opcode %s", evm.Opcode(code[0]))
	}
}

func TestAssembleExplicitWidthPadding(t *testing.T) {
	code, err := Assemble("PUSH4 0x01")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{byte(evm.PUSH4), 0, 0, 0, 1}
	if !bytes.Equal(code, want) {
		t.Fatalf("got %x", code)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"BOGUS",
		"ADD 1",        // operand on plain op
		"PUSH1",        // missing operand
		"PUSH1 0x0102", // too wide
		"PUSH1 zz",     // bad immediate
		"PUSH99 1",     // bad width
		":",            // empty label
		"PUSH1 @lbl",   // label needs PUSH/PUSH2
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestDisassembleTruncatedPush(t *testing.T) {
	// PUSH4 with only 2 immediate bytes present.
	code := []byte{byte(evm.PUSH4), 0xAA, 0xBB}
	insts := Disassemble(code)
	if len(insts) != 1 {
		t.Fatalf("%d instructions", len(insts))
	}
	if len(insts[0].Imm) != 4 || insts[0].Imm[0] != 0xAA || insts[0].Imm[3] != 0 {
		t.Fatalf("imm %x", insts[0].Imm)
	}
}

func TestDisassembleRoundTripProperty(t *testing.T) {
	// Random valid instruction streams must re-assemble to identical bytes.
	r := rand.New(rand.NewSource(7))
	valid := []evm.Opcode{evm.ADD, evm.MUL, evm.POP, evm.CALLER, evm.MLOAD,
		evm.SSTORE, evm.DUP3, evm.SWAP2, evm.JUMPDEST, evm.STOP}
	for trial := 0; trial < 200; trial++ {
		b := NewBuilder()
		n := 1 + r.Intn(40)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				imm := make([]byte, 1+r.Intn(32))
				r.Read(imm)
				b.PushBytes(imm)
			} else {
				b.Op(valid[r.Intn(len(valid))])
			}
		}
		code := b.MustBuild()
		insts := Disassemble(code)
		// Re-emit.
		b2 := NewBuilder()
		for _, in := range insts {
			if in.Op.IsPush() {
				// Preserve explicit width.
				b2.Raw(append([]byte{byte(in.Op)}, in.Imm...))
			} else {
				b2.Op(in.Op)
			}
		}
		code2 := b2.MustBuild()
		if !bytes.Equal(code, code2) {
			t.Fatalf("trial %d: %x != %x", trial, code, code2)
		}
	}
}

func TestStats(t *testing.T) {
	code := NewBuilder().
		PushInt(1).PushInt(2).Op(evm.ADD).Op(evm.POP).Op(evm.STOP).
		MustBuild()
	stats := Stats(code)
	if stats[evm.FUStack] != 3 { // two pushes + POP
		t.Errorf("stack count %d", stats[evm.FUStack])
	}
	if stats[evm.FUArithmetic] != 1 || stats[evm.FUControl] != 1 {
		t.Errorf("stats %v", stats)
	}
	units := SortedUnits(stats)
	for i := 1; i < len(units); i++ {
		if units[i-1] >= units[i] {
			t.Error("units not sorted")
		}
	}
}

func TestFormatListing(t *testing.T) {
	code := NewBuilder().PushInt(0xB6).Op(evm.JUMP).MustBuild()
	out := Format(code)
	if out == "" || !bytes.Contains([]byte(out), []byte("JUMP")) {
		t.Errorf("listing: %q", out)
	}
}
