// Package profiling wraps runtime/pprof for the CLIs: one call starts
// the requested profiles and returns a stop function that finishes
// them, so mtpu-run and mtpu-bench expose identical
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile flags for
// profile-guided perf passes.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles selects which profiles to write; empty paths disable.
type Profiles struct {
	// CPU is sampled for the whole run.
	CPU string
	// Mem is the heap profile at exit (after a final GC).
	Mem string
	// Block records goroutine blocking (channel/select/sync waits) for
	// the whole run; enabling it sets the block profile rate to 1.
	Block string
	// Mutex records contended mutex holders for the whole run; enabling
	// it sets the mutex profile fraction to 1.
	Mutex string
}

// Paths lists the non-empty profile paths (ledger stamping).
func (p Profiles) Paths() []string {
	var out []string
	for _, s := range []string{p.CPU, p.Mem, p.Block, p.Mutex} {
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Start begins profiling per the flag values (empty strings disable).
// The returned stop must be called exactly once before the process
// exits; it is safe to call when no profile was requested.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	return StartAll(Profiles{CPU: cpuPath, Mem: memPath})
}

// StartAll is Start over the full profile set.
func StartAll(p Profiles) (stop func() error, err error) {
	var cpuFile *os.File
	if p.CPU != "" {
		cpuFile, err = os.Create(p.CPU)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	if p.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if p.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: closing CPU profile: %w", err)
			}
		}
		if p.Mem != "" {
			f, err := os.Create(p.Mem)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: writing heap profile: %w", err)
			}
		}
		if err := writeLookup("block", p.Block); err != nil {
			return err
		}
		if err := writeLookup("mutex", p.Mutex); err != nil {
			return err
		}
		return nil
	}, nil
}

// writeLookup dumps one named runtime profile to path (no-op when
// path is empty).
func writeLookup(name, path string) error {
	if path == "" {
		return nil
	}
	prof := pprof.Lookup(name)
	if prof == nil {
		return fmt.Errorf("profiling: no %q profile in this runtime", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	if err := prof.WriteTo(f, 0); err != nil {
		return fmt.Errorf("profiling: writing %s profile: %w", name, err)
	}
	return nil
}
