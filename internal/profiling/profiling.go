// Package profiling wraps runtime/pprof for the CLIs: one call starts
// the CPU profile and returns a stop function that finishes it and
// writes the heap profile, so mtpu-run and mtpu-bench expose identical
// -cpuprofile/-memprofile flags for profile-guided perf passes.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the flag values (empty strings disable).
// The returned stop must be called exactly once before the process
// exits; it is safe to call when neither profile was requested.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: starting CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: closing CPU profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: writing heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
