package types

import (
	"fmt"

	"mtpu/internal/keccak"
	"mtpu/internal/rlp"
)

// Block serialization. Per §2.2.2 the dependency DAG discovered at
// consensus time is "serialised and persistently stored in blocks" so
// every validating node can schedule without re-deriving conflicts; the
// encoding here is [header, [tx...], [deps...]] where deps[i] lists the
// indices transaction i depends on.

// rlpValue returns the transaction as a nested RLP value (shared by
// EncodeRLP and block encoding).
func (tx *Transaction) rlpValue() rlp.Value {
	var to []byte
	if tx.To != nil {
		to = tx.To.Bytes()
	}
	return rlp.ListValue(
		rlp.Uint64Value(tx.Nonce),
		rlp.Uint64Value(tx.GasPrice),
		rlp.Uint64Value(tx.GasLimit),
		rlp.StringValue(tx.From.Bytes()),
		rlp.StringValue(to),
		rlp.StringValue(tx.Value.Bytes()),
		rlp.StringValue(tx.Data),
	)
}

// headerValue returns the RLP structure of a block header.
func (h *BlockHeader) headerValue() rlp.Value {
	return rlp.ListValue(
		rlp.Uint64Value(h.Height),
		rlp.Uint64Value(h.Timestamp),
		rlp.StringValue(h.Coinbase.Bytes()),
		rlp.Uint64Value(h.Difficulty),
		rlp.Uint64Value(h.GasLimit),
		rlp.StringValue(h.ParentHash.Bytes()),
	)
}

// EncodeRLP serializes the block with its transactions and DAG.
func (b *Block) EncodeRLP() []byte {
	txs := make([]rlp.Value, len(b.Transactions))
	for i, tx := range b.Transactions {
		txs[i] = tx.rlpValue()
	}
	dag := rlp.ListValue()
	if b.DAG != nil {
		edges := make([]rlp.Value, len(b.DAG.Deps))
		for i, deps := range b.DAG.Deps {
			row := make([]rlp.Value, len(deps))
			for j, d := range deps {
				row[j] = rlp.Uint64Value(uint64(d))
			}
			edges[i] = rlp.ListValue(row...)
		}
		dag = rlp.ListValue(edges...)
	}
	return rlp.Encode(rlp.ListValue(
		b.Header.headerValue(),
		rlp.ListValue(txs...),
		dag,
	))
}

// Hash returns the Keccak-256 identity of the encoded block.
func (b *Block) Hash() Hash {
	return Hash(keccak.Sum256(b.EncodeRLP()))
}

// DecodeBlockRLP parses a block serialized by EncodeRLP, validating the
// DAG (forward edges, indices in range) so a malicious block cannot smuggle
// an unserializable schedule.
func DecodeBlockRLP(data []byte) (*Block, error) {
	v, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("types: block: %w", err)
	}
	if v.Kind != rlp.List || len(v.Elems) != 3 {
		return nil, fmt.Errorf("types: block: want 3-element list, got %d", len(v.Elems))
	}

	header, err := decodeHeader(v.Elems[0])
	if err != nil {
		return nil, err
	}

	txsVal := v.Elems[1]
	if txsVal.Kind != rlp.List {
		return nil, fmt.Errorf("types: block: transactions not a list")
	}
	txs := make([]*Transaction, len(txsVal.Elems))
	for i, tv := range txsVal.Elems {
		tx, err := decodeTxValue(tv)
		if err != nil {
			return nil, fmt.Errorf("types: block tx %d: %w", i, err)
		}
		txs[i] = tx
	}

	block := NewBlock(header, txs)
	dagVal := v.Elems[2]
	if dagVal.Kind != rlp.List {
		return nil, fmt.Errorf("types: block: dag not a list")
	}
	if len(dagVal.Elems) > 0 {
		if len(dagVal.Elems) != len(txs) {
			return nil, fmt.Errorf("types: block: dag covers %d of %d transactions",
				len(dagVal.Elems), len(txs))
		}
		for i, row := range dagVal.Elems {
			if row.Kind != rlp.List {
				return nil, fmt.Errorf("types: block: dag row %d not a list", i)
			}
			for _, e := range row.Elems {
				dep, err := e.Uint64()
				if err != nil {
					return nil, fmt.Errorf("types: block: dag row %d: %w", i, err)
				}
				if int(dep) >= i {
					return nil, fmt.Errorf("types: block: dag edge %d→%d not forward", dep, i)
				}
				block.DAG.AddEdge(int(dep), i)
			}
		}
	}
	return block, nil
}

func decodeHeader(v rlp.Value) (BlockHeader, error) {
	var h BlockHeader
	if v.Kind != rlp.List || len(v.Elems) != 6 {
		return h, fmt.Errorf("types: header: want 6 fields")
	}
	var err error
	if h.Height, err = v.Elems[0].Uint64(); err != nil {
		return h, fmt.Errorf("types: header height: %w", err)
	}
	if h.Timestamp, err = v.Elems[1].Uint64(); err != nil {
		return h, fmt.Errorf("types: header timestamp: %w", err)
	}
	if len(v.Elems[2].Str) != AddressLength {
		return h, fmt.Errorf("types: header coinbase length %d", len(v.Elems[2].Str))
	}
	h.Coinbase = BytesToAddress(v.Elems[2].Str)
	if h.Difficulty, err = v.Elems[3].Uint64(); err != nil {
		return h, fmt.Errorf("types: header difficulty: %w", err)
	}
	if h.GasLimit, err = v.Elems[4].Uint64(); err != nil {
		return h, fmt.Errorf("types: header gasLimit: %w", err)
	}
	if len(v.Elems[5].Str) != HashLength {
		return h, fmt.Errorf("types: header parent hash length %d", len(v.Elems[5].Str))
	}
	h.ParentHash = BytesToHash(v.Elems[5].Str)
	return h, nil
}

// decodeTxValue decodes a nested transaction value (the same layout
// DecodeTransactionRLP accepts as a standalone encoding).
func decodeTxValue(v rlp.Value) (*Transaction, error) {
	return DecodeTransactionRLP(rlp.Encode(v))
}
