package types

import (
	"bytes"
	"testing"
	"testing/quick"

	"mtpu/internal/rlp"
	"mtpu/internal/uint256"
)

func TestAddressConversions(t *testing.T) {
	a := HexToAddress("0x0102030405060708090a0b0c0d0e0f1011121314")
	if a.Hex() != "0x0102030405060708090a0b0c0d0e0f1011121314" {
		t.Errorf("hex round-trip: %s", a.Hex())
	}
	// Short input left-pads.
	b := BytesToAddress([]byte{0xAB})
	if b[19] != 0xAB || b[0] != 0 {
		t.Errorf("short pad: %s", b)
	}
	// Long input keeps low-order bytes.
	long := make([]byte, 25)
	long[24] = 0xCD
	c := BytesToAddress(long)
	if c[19] != 0xCD {
		t.Errorf("long truncate: %s", c)
	}
	if !(Address{}).IsZero() || a.IsZero() {
		t.Error("IsZero")
	}
}

func TestAddressWordRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		a := Address(raw)
		w := a.Word()
		return WordToAddress(&w) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashConversions(t *testing.T) {
	h := BytesToHash([]byte{1, 2, 3})
	if h[31] != 3 || h[29] != 1 {
		t.Errorf("hash pad: %s", h)
	}
	w := h.Word()
	if BytesToHash(w.Bytes()) != h {
		t.Error("hash word round-trip")
	}
}

func mkTx(data []byte, to *Address) *Transaction {
	tx := &Transaction{
		Nonce:    7,
		GasPrice: 2,
		GasLimit: 100000,
		From:     HexToAddress("0x1111111111111111111111111111111111111111"),
		To:       to,
		Data:     data,
	}
	tx.Value.SetUint64(999)
	return tx
}

func TestTransactionRLPRoundTrip(t *testing.T) {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	cases := []*Transaction{
		mkTx(nil, &to),
		mkTx([]byte{0xa9, 0x05, 0x9c, 0xbb, 1, 2, 3}, &to),
		mkTx([]byte{1}, nil), // creation
	}
	for i, tx := range cases {
		enc := tx.EncodeRLP()
		dec, err := DecodeTransactionRLP(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if dec.Nonce != tx.Nonce || dec.GasPrice != tx.GasPrice ||
			dec.GasLimit != tx.GasLimit || dec.From != tx.From ||
			!dec.Value.Eq(&tx.Value) || !bytes.Equal(dec.Data, tx.Data) {
			t.Fatalf("case %d: fields differ: %+v vs %+v", i, dec, tx)
		}
		if (dec.To == nil) != (tx.To == nil) {
			t.Fatalf("case %d: To nil-ness", i)
		}
		if dec.To != nil && *dec.To != *tx.To {
			t.Fatalf("case %d: To differs", i)
		}
		// Canonical: re-encoding matches.
		if !bytes.Equal(dec.EncodeRLP(), enc) {
			t.Fatalf("case %d: non-canonical", i)
		}
	}
}

func TestTransactionRLPErrors(t *testing.T) {
	if _, err := DecodeTransactionRLP([]byte{0x01}); err == nil {
		t.Error("non-list accepted")
	}
	if _, err := DecodeTransactionRLP([]byte{0xc0}); err == nil {
		t.Error("empty list accepted")
	}
	// A 19-byte From field is invalid.
	bad := rlp.Encode(rlp.ListValue(
		rlp.Uint64Value(1), rlp.Uint64Value(1), rlp.Uint64Value(1),
		rlp.StringValue(make([]byte, 19)),
		rlp.StringValue(nil), rlp.StringValue(nil), rlp.StringValue(nil),
	))
	if _, err := DecodeTransactionRLP(bad); err == nil {
		t.Error("19-byte From accepted")
	}
	// A 7-byte To field is invalid too.
	bad = rlp.Encode(rlp.ListValue(
		rlp.Uint64Value(1), rlp.Uint64Value(1), rlp.Uint64Value(1),
		rlp.StringValue(make([]byte, 20)),
		rlp.StringValue(make([]byte, 7)), rlp.StringValue(nil), rlp.StringValue(nil),
	))
	if _, err := DecodeTransactionRLP(bad); err == nil {
		t.Error("7-byte To accepted")
	}
}

func TestTransactionHashDiffers(t *testing.T) {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	a := mkTx(nil, &to)
	b := mkTx(nil, &to)
	if a.Hash() != b.Hash() {
		t.Error("identical txs hash differently")
	}
	b.Nonce++
	if a.Hash() == b.Hash() {
		t.Error("different txs collide")
	}
}

func TestSelector(t *testing.T) {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	tx := mkTx([]byte{0xa9, 0x05, 0x9c, 0xbb, 0xff}, &to)
	sel, ok := tx.Selector()
	if !ok || sel != [4]byte{0xa9, 0x05, 0x9c, 0xbb} {
		t.Errorf("selector %x ok=%v", sel, ok)
	}
	if _, ok := mkTx(nil, &to).Selector(); ok {
		t.Error("transfer has a selector")
	}
	if _, ok := mkTx([]byte{1, 2}, nil).Selector(); ok {
		t.Error("creation has a selector")
	}
	if mkTx(nil, nil).IsContractCreation() != true {
		t.Error("IsContractCreation")
	}
}

func TestDAGBasics(t *testing.T) {
	d := NewDAG(5)
	d.AddEdge(0, 2)
	d.AddEdge(0, 2) // duplicate ignored
	d.AddEdge(1, 2)
	d.AddEdge(2, 4)
	if len(d.Deps[2]) != 2 {
		t.Fatalf("deps of 2: %v", d.Deps[2])
	}
	in := d.InDegrees()
	if in[0] != 0 || in[2] != 2 || in[4] != 1 {
		t.Fatalf("indegrees %v", in)
	}
	succ := d.Successors()
	if len(succ[0]) != 1 || succ[0][0] != 2 {
		t.Fatalf("successors %v", succ)
	}
	if got := d.DependentRatio(); got != 0.4 {
		t.Fatalf("dependent ratio %f", got)
	}
	if got := d.CriticalPathLen(); got != 3 { // 0→2→4
		t.Fatalf("critical path %d", got)
	}
}

func TestDAGInvalidEdgePanics(t *testing.T) {
	cases := [][2]int{{2, 1}, {1, 1}, {-1, 2}, {0, 9}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("edge %v did not panic", c)
				}
			}()
			NewDAG(5).AddEdge(c[0], c[1])
		}()
	}
}

func TestDAGEmptyAndSingle(t *testing.T) {
	d := NewDAG(0)
	if d.DependentRatio() != 0 || d.CriticalPathLen() != 0 {
		t.Error("empty DAG metrics")
	}
	d1 := NewDAG(1)
	if d1.CriticalPathLen() != 1 {
		t.Error("single-node critical path")
	}
}

func TestCreateAddressDeterminism(t *testing.T) {
	sender := HexToAddress("0x3333333333333333333333333333333333333333")
	a1 := CreateAddress(sender, 0)
	a2 := CreateAddress(sender, 0)
	a3 := CreateAddress(sender, 1)
	if a1 != a2 {
		t.Error("non-deterministic")
	}
	if a1 == a3 {
		t.Error("nonce ignored")
	}
	other := HexToAddress("0x4444444444444444444444444444444444444444")
	if CreateAddress(other, 0) == a1 {
		t.Error("sender ignored")
	}
}

func TestBlockConstruction(t *testing.T) {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	txs := []*Transaction{mkTx(nil, &to), mkTx(nil, &to)}
	b := NewBlock(BlockHeader{Height: 9}, txs)
	if b.DAG.Len() != 2 {
		t.Fatalf("DAG len %d", b.DAG.Len())
	}
	if b.Header.Height != 9 {
		t.Fatal("header lost")
	}
}

func TestValueOverflowRejected(t *testing.T) {
	// A 33-byte Value field must be rejected on decode.
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	tx := mkTx(nil, &to)
	var huge uint256.Int
	huge.SetAllOne()
	tx.Value = huge
	enc := tx.EncodeRLP()
	dec, err := DecodeTransactionRLP(enc)
	if err != nil {
		t.Fatalf("max value should round-trip: %v", err)
	}
	if !dec.Value.Eq(&huge) {
		t.Fatal("max value mangled")
	}
}
