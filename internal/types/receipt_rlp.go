package types

import (
	"fmt"

	"mtpu/internal/rlp"
)

// Receipt serialization: nodes persist receipts alongside blocks (the
// Receipt Buffer of §3.3.6 drains into the chain's receipt trie in real
// systems). Encoding: [txIndex, status, gasUsed, contractAddress,
// returnData, [log...]] with log = [address, [topic...], data].

// EncodeRLP serializes the receipt.
func (r *Receipt) EncodeRLP() []byte {
	logs := make([]rlp.Value, len(r.Logs))
	for i, l := range r.Logs {
		topics := make([]rlp.Value, len(l.Topics))
		for j, tp := range l.Topics {
			topics[j] = rlp.StringValue(tp.Bytes())
		}
		logs[i] = rlp.ListValue(
			rlp.StringValue(l.Address.Bytes()),
			rlp.ListValue(topics...),
			rlp.StringValue(l.Data),
		)
	}
	return rlp.Encode(rlp.ListValue(
		rlp.Uint64Value(uint64(r.TxIndex)),
		rlp.Uint64Value(r.Status),
		rlp.Uint64Value(r.GasUsed),
		rlp.StringValue(r.ContractAddress.Bytes()),
		rlp.StringValue(r.ReturnData),
		rlp.ListValue(logs...),
	))
}

// DecodeReceiptRLP parses a receipt serialized by EncodeRLP.
func DecodeReceiptRLP(data []byte) (*Receipt, error) {
	v, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("types: receipt: %w", err)
	}
	if v.Kind != rlp.List || len(v.Elems) != 6 {
		return nil, fmt.Errorf("types: receipt: want 6 fields, got %d", len(v.Elems))
	}
	r := &Receipt{}
	idx, err := v.Elems[0].Uint64()
	if err != nil {
		return nil, fmt.Errorf("types: receipt txIndex: %w", err)
	}
	r.TxIndex = int(idx)
	if r.Status, err = v.Elems[1].Uint64(); err != nil {
		return nil, fmt.Errorf("types: receipt status: %w", err)
	}
	if r.Status != ReceiptFailed && r.Status != ReceiptSuccess {
		return nil, fmt.Errorf("types: receipt status %d invalid", r.Status)
	}
	if r.GasUsed, err = v.Elems[2].Uint64(); err != nil {
		return nil, fmt.Errorf("types: receipt gasUsed: %w", err)
	}
	if len(v.Elems[3].Str) != AddressLength {
		return nil, fmt.Errorf("types: receipt contract address length %d", len(v.Elems[3].Str))
	}
	r.ContractAddress = BytesToAddress(v.Elems[3].Str)
	if len(v.Elems[4].Str) > 0 {
		r.ReturnData = append([]byte(nil), v.Elems[4].Str...)
	}
	if v.Elems[5].Kind != rlp.List {
		return nil, fmt.Errorf("types: receipt logs not a list")
	}
	for i, lv := range v.Elems[5].Elems {
		l, err := decodeLog(lv)
		if err != nil {
			return nil, fmt.Errorf("types: receipt log %d: %w", i, err)
		}
		r.Logs = append(r.Logs, l)
	}
	return r, nil
}

func decodeLog(v rlp.Value) (*Log, error) {
	if v.Kind != rlp.List || len(v.Elems) != 3 {
		return nil, fmt.Errorf("want 3 fields")
	}
	if len(v.Elems[0].Str) != AddressLength {
		return nil, fmt.Errorf("address length %d", len(v.Elems[0].Str))
	}
	l := &Log{Address: BytesToAddress(v.Elems[0].Str)}
	if v.Elems[1].Kind != rlp.List {
		return nil, fmt.Errorf("topics not a list")
	}
	for _, tv := range v.Elems[1].Elems {
		if len(tv.Str) != HashLength {
			return nil, fmt.Errorf("topic length %d", len(tv.Str))
		}
		l.Topics = append(l.Topics, BytesToHash(tv.Str))
	}
	if len(v.Elems[2].Str) > 0 {
		l.Data = append([]byte(nil), v.Elems[2].Str...)
	}
	return l, nil
}
