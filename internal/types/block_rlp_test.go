package types

import (
	"bytes"
	"testing"

	"mtpu/internal/rlp"
)

func sampleBlock() *Block {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	txs := []*Transaction{
		mkTx(nil, &to),
		mkTx([]byte{0xa9, 0x05, 0x9c, 0xbb, 1}, &to),
		mkTx([]byte{2}, nil),
	}
	b := NewBlock(BlockHeader{
		Height: 1000, Timestamp: 1700000000,
		Coinbase:   HexToAddress("0x00000000000000000000000000000000000000fe"),
		Difficulty: 7, GasLimit: 30_000_000,
		ParentHash: BytesToHash([]byte{0xAA}),
	}, txs)
	b.DAG.AddEdge(0, 1)
	b.DAG.AddEdge(0, 2)
	b.DAG.AddEdge(1, 2)
	return b
}

func TestBlockRLPRoundTrip(t *testing.T) {
	b := sampleBlock()
	enc := b.EncodeRLP()
	dec, err := DecodeBlockRLP(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Header != b.Header {
		t.Fatalf("header %+v vs %+v", dec.Header, b.Header)
	}
	if len(dec.Transactions) != 3 {
		t.Fatalf("%d txs", len(dec.Transactions))
	}
	for i := range b.Transactions {
		if dec.Transactions[i].Hash() != b.Transactions[i].Hash() {
			t.Fatalf("tx %d differs", i)
		}
	}
	if len(dec.DAG.Deps[2]) != 2 || dec.DAG.Deps[1][0] != 0 {
		t.Fatalf("DAG %v", dec.DAG.Deps)
	}
	// Canonical: re-encoding matches byte for byte.
	if !bytes.Equal(dec.EncodeRLP(), enc) {
		t.Fatal("non-canonical block encoding")
	}
}

func TestBlockHashIdentity(t *testing.T) {
	b1, b2 := sampleBlock(), sampleBlock()
	if b1.Hash() != b2.Hash() {
		t.Fatal("identical blocks hash differently")
	}
	b2.Header.Height++
	if b1.Hash() == b2.Hash() {
		t.Fatal("header change not reflected in hash")
	}
	b3 := sampleBlock()
	b3.DAG.AddEdge(1, 2) // duplicate — ignored, so hash unchanged
	if b1.Hash() != b3.Hash() {
		t.Fatal("duplicate edge changed hash")
	}
}

func TestBlockRLPEmptyDAG(t *testing.T) {
	b := sampleBlock()
	b.DAG = nil
	dec, err := DecodeBlockRLP(b.EncodeRLP())
	if err != nil {
		t.Fatal(err)
	}
	if dec.DAG.Len() != 3 {
		t.Fatal("decoder should build an empty DAG sized to the txs")
	}
	for _, deps := range dec.DAG.Deps {
		if len(deps) != 0 {
			t.Fatal("phantom edges")
		}
	}
}

func TestBlockRLPRejectsMalice(t *testing.T) {
	b := sampleBlock()

	// Backward/self edge smuggled into the DAG encoding.
	enc := rlp.Encode(rlp.ListValue(
		b.Header.headerValue(),
		rlp.ListValue(b.Transactions[0].rlpValue(), b.Transactions[1].rlpValue()),
		rlp.ListValue(
			rlp.ListValue(rlp.Uint64Value(1)), // tx0 depends on tx1: backward
			rlp.ListValue(),
		),
	))
	if _, err := DecodeBlockRLP(enc); err == nil {
		t.Error("backward edge accepted")
	}

	// DAG length mismatch.
	enc = rlp.Encode(rlp.ListValue(
		b.Header.headerValue(),
		rlp.ListValue(b.Transactions[0].rlpValue()),
		rlp.ListValue(rlp.ListValue(), rlp.ListValue()),
	))
	if _, err := DecodeBlockRLP(enc); err == nil {
		t.Error("DAG length mismatch accepted")
	}

	// Truncated top-level list.
	enc = rlp.Encode(rlp.ListValue(b.Header.headerValue()))
	if _, err := DecodeBlockRLP(enc); err == nil {
		t.Error("2-element block accepted")
	}

	// Bad header field count.
	enc = rlp.Encode(rlp.ListValue(
		rlp.ListValue(rlp.Uint64Value(1)),
		rlp.ListValue(),
		rlp.ListValue(),
	))
	if _, err := DecodeBlockRLP(enc); err == nil {
		t.Error("short header accepted")
	}

	if _, err := DecodeBlockRLP([]byte{0x80}); err == nil {
		t.Error("non-list block accepted")
	}
}
