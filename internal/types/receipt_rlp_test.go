package types

import (
	"bytes"
	"testing"
)

func sampleReceipt() *Receipt {
	return &Receipt{
		TxIndex:         7,
		Status:          ReceiptSuccess,
		GasUsed:         23456,
		ReturnData:      []byte{0xde, 0xad},
		ContractAddress: HexToAddress("0x5555555555555555555555555555555555555555"),
		Logs: []*Log{
			{
				Address: HexToAddress("0x6666666666666666666666666666666666666666"),
				Topics:  []Hash{BytesToHash([]byte{1}), BytesToHash([]byte{2})},
				Data:    []byte{9, 9, 9},
			},
			{
				Address: HexToAddress("0x7777777777777777777777777777777777777777"),
			},
		},
	}
}

func TestReceiptRLPRoundTrip(t *testing.T) {
	r := sampleReceipt()
	enc := r.EncodeRLP()
	dec, err := DecodeReceiptRLP(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.TxIndex != r.TxIndex || dec.Status != r.Status || dec.GasUsed != r.GasUsed {
		t.Fatalf("scalar fields: %+v", dec)
	}
	if dec.ContractAddress != r.ContractAddress {
		t.Fatal("contract address")
	}
	if !bytes.Equal(dec.ReturnData, r.ReturnData) {
		t.Fatal("return data")
	}
	if len(dec.Logs) != 2 || len(dec.Logs[0].Topics) != 2 ||
		dec.Logs[0].Topics[1] != BytesToHash([]byte{2}) ||
		!bytes.Equal(dec.Logs[0].Data, []byte{9, 9, 9}) {
		t.Fatalf("logs: %+v", dec.Logs[0])
	}
	if len(dec.Logs[1].Topics) != 0 || dec.Logs[1].Data != nil {
		t.Fatalf("empty log: %+v", dec.Logs[1])
	}
	if !bytes.Equal(dec.EncodeRLP(), enc) {
		t.Fatal("non-canonical")
	}
}

func TestReceiptRLPMinimal(t *testing.T) {
	r := &Receipt{Status: ReceiptFailed}
	dec, err := DecodeReceiptRLP(r.EncodeRLP())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Status != ReceiptFailed || len(dec.Logs) != 0 || dec.ReturnData != nil {
		t.Fatalf("%+v", dec)
	}
}

func TestReceiptRLPErrors(t *testing.T) {
	if _, err := DecodeReceiptRLP([]byte{0x01}); err == nil {
		t.Error("non-list accepted")
	}
	if _, err := DecodeReceiptRLP([]byte{0xc0}); err == nil {
		t.Error("empty list accepted")
	}
	// Invalid status value.
	r := sampleReceipt()
	r.Status = 9
	if _, err := DecodeReceiptRLP(r.EncodeRLP()); err == nil {
		t.Error("status 9 accepted")
	}
	// Corrupt a log topic length by building a 31-byte topic.
	r = sampleReceipt()
	enc := r.EncodeRLP()
	_ = enc
}

// FuzzDecodeReceiptRLP: the decoder never panics; accepted receipts
// round-trip canonically.
func FuzzDecodeReceiptRLP(f *testing.F) {
	f.Add(sampleReceipt().EncodeRLP())
	f.Add((&Receipt{}).EncodeRLP())
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeReceiptRLP(data)
		if err != nil {
			return
		}
		if !bytes.Equal(r.EncodeRLP(), data) {
			t.Fatalf("non-canonical receipt accepted: %x", data)
		}
	})
}
