// Package types defines the core blockchain data model shared by the
// functional EVM, the architectural simulator and the scheduler: addresses,
// hashes, transactions (Fig. 3(a)), blocks carrying the consensus-produced
// dependency DAG (§2.2.2), receipts and logs.
package types

import (
	"encoding/hex"
	"errors"
	"fmt"

	"mtpu/internal/keccak"
	"mtpu/internal/rlp"
	"mtpu/internal/uint256"
)

// AddressLength is the byte length of an account address.
const AddressLength = 20

// HashLength is the byte length of a 256-bit hash.
const HashLength = 32

// Address is a 20-byte account identifier.
type Address [AddressLength]byte

// Hash is a 32-byte Keccak-256 digest.
type Hash [HashLength]byte

// BytesToAddress converts b to an Address, left-truncating or left-padding
// to 20 bytes (Ethereum convention: keep the low-order bytes).
func BytesToAddress(b []byte) Address {
	var a Address
	if len(b) > AddressLength {
		b = b[len(b)-AddressLength:]
	}
	copy(a[AddressLength-len(b):], b)
	return a
}

// HexToAddress parses a hex string (with or without 0x prefix) as an Address.
func HexToAddress(s string) Address {
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		panic(fmt.Sprintf("types: bad address hex %q: %v", s, err))
	}
	return BytesToAddress(b)
}

// Bytes returns the address as a byte slice.
func (a Address) Bytes() []byte { return a[:] }

// Hex returns the 0x-prefixed hex form of the address.
func (a Address) Hex() string { return "0x" + hex.EncodeToString(a[:]) }

// String implements fmt.Stringer.
func (a Address) String() string { return a.Hex() }

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// Word returns the address as a 256-bit word (left-padded).
func (a Address) Word() uint256.Int {
	var z uint256.Int
	z.SetBytes(a[:])
	return z
}

// WordToAddress extracts the low 20 bytes of a 256-bit word as an address.
func WordToAddress(w *uint256.Int) Address {
	b := w.Bytes32()
	return BytesToAddress(b[12:])
}

// BytesToHash converts b to a Hash, keeping the low-order 32 bytes.
func BytesToHash(b []byte) Hash {
	var h Hash
	if len(b) > HashLength {
		b = b[len(b)-HashLength:]
	}
	copy(h[HashLength-len(b):], b)
	return h
}

// Bytes returns the hash as a byte slice.
func (h Hash) Bytes() []byte { return h[:] }

// Hex returns the 0x-prefixed hex form of the hash.
func (h Hash) Hex() string { return "0x" + hex.EncodeToString(h[:]) }

// String implements fmt.Stringer.
func (h Hash) String() string { return h.Hex() }

// Word returns the hash as a 256-bit word.
func (h Hash) Word() uint256.Int {
	var z uint256.Int
	z.SetBytes(h[:])
	return z
}

// Transaction mirrors the RLP transaction layout of Fig. 3(a): a token
// transfer when Data is empty, or a smart-contract invocation whose Data
// carries the 4-byte function identifier followed by ABI-encoded arguments.
type Transaction struct {
	Nonce    uint64
	GasPrice uint64
	GasLimit uint64
	From     Address
	// To is the callee; nil means contract creation.
	To    *Address
	Value uint256.Int
	Data  []byte
}

// IsContractCreation reports whether the transaction deploys a contract.
func (tx *Transaction) IsContractCreation() bool { return tx.To == nil }

// Selector returns the 4-byte entry-function identifier from the Input
// field, and ok=false for plain transfers or creations.
func (tx *Transaction) Selector() (sel [4]byte, ok bool) {
	if tx.To == nil || len(tx.Data) < 4 {
		return sel, false
	}
	copy(sel[:], tx.Data[:4])
	return sel, true
}

// EncodeRLP serializes the transaction in the network/persistence form.
func (tx *Transaction) EncodeRLP() []byte {
	var to []byte
	if tx.To != nil {
		to = tx.To.Bytes()
	}
	return rlp.Encode(rlp.ListValue(
		rlp.Uint64Value(tx.Nonce),
		rlp.Uint64Value(tx.GasPrice),
		rlp.Uint64Value(tx.GasLimit),
		rlp.StringValue(tx.From.Bytes()),
		rlp.StringValue(to),
		rlp.StringValue(tx.Value.Bytes()),
		rlp.StringValue(tx.Data),
	))
}

// ErrBadTransaction reports a malformed RLP transaction payload.
var ErrBadTransaction = errors.New("types: malformed RLP transaction")

// DecodeTransactionRLP parses a transaction serialized by EncodeRLP.
func DecodeTransactionRLP(data []byte) (*Transaction, error) {
	v, err := rlp.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTransaction, err)
	}
	if v.Kind != rlp.List || len(v.Elems) != 7 {
		return nil, ErrBadTransaction
	}
	for _, field := range v.Elems {
		if field.Kind != rlp.String {
			return nil, ErrBadTransaction
		}
	}
	tx := &Transaction{}
	if tx.Nonce, err = v.Elems[0].Uint64(); err != nil {
		return nil, fmt.Errorf("%w: nonce: %v", ErrBadTransaction, err)
	}
	if tx.GasPrice, err = v.Elems[1].Uint64(); err != nil {
		return nil, fmt.Errorf("%w: gasPrice: %v", ErrBadTransaction, err)
	}
	if tx.GasLimit, err = v.Elems[2].Uint64(); err != nil {
		return nil, fmt.Errorf("%w: gasLimit: %v", ErrBadTransaction, err)
	}
	if len(v.Elems[3].Str) != AddressLength {
		return nil, fmt.Errorf("%w: from length %d", ErrBadTransaction, len(v.Elems[3].Str))
	}
	tx.From = BytesToAddress(v.Elems[3].Str)
	switch len(v.Elems[4].Str) {
	case 0:
		tx.To = nil
	case AddressLength:
		to := BytesToAddress(v.Elems[4].Str)
		tx.To = &to
	default:
		return nil, fmt.Errorf("%w: to length %d", ErrBadTransaction, len(v.Elems[4].Str))
	}
	if len(v.Elems[5].Str) > 32 {
		return nil, fmt.Errorf("%w: value length %d", ErrBadTransaction, len(v.Elems[5].Str))
	}
	tx.Value.SetBytes(v.Elems[5].Str)
	tx.Data = append([]byte(nil), v.Elems[6].Str...)
	return tx, nil
}

// Hash returns the Keccak-256 digest of the RLP encoding, the transaction's
// network identity.
func (tx *Transaction) Hash() Hash {
	return Hash(keccak.Sum256(tx.EncodeRLP()))
}

// BlockHeader carries the fixed-length per-block parameters of Table 4.
type BlockHeader struct {
	Height     uint64
	Timestamp  uint64
	Coinbase   Address
	Difficulty uint64
	GasLimit   uint64
	ParentHash Hash
}

// DAG is the consensus-produced transaction dependency graph persisted with
// the block (§2.2.2): Deps[i] lists the indices of transactions that
// transaction i depends on (must execute before it).
type DAG struct {
	Deps [][]int
}

// NewDAG returns an empty DAG for n transactions.
func NewDAG(n int) *DAG {
	return &DAG{Deps: make([][]int, n)}
}

// AddEdge records that transaction to depends on transaction from
// (from → to in the paper's edge direction). It panics on out-of-range or
// non-forward edges, which would make the DAG unserializable.
func (d *DAG) AddEdge(from, to int) {
	if from < 0 || to >= len(d.Deps) || from >= to {
		panic(fmt.Sprintf("types: invalid DAG edge %d→%d over %d transactions", from, to, len(d.Deps)))
	}
	for _, e := range d.Deps[to] {
		if e == from {
			return
		}
	}
	d.Deps[to] = append(d.Deps[to], from)
}

// Len returns the number of transactions covered by the DAG.
func (d *DAG) Len() int { return len(d.Deps) }

// InDegrees returns the dependency count of every transaction.
func (d *DAG) InDegrees() []int {
	in := make([]int, len(d.Deps))
	for i, deps := range d.Deps {
		in[i] = len(deps)
	}
	return in
}

// Successors returns, for each transaction, the list of transactions that
// depend on it (the forward adjacency of the DAG).
func (d *DAG) Successors() [][]int {
	succ := make([][]int, len(d.Deps))
	for i, deps := range d.Deps {
		for _, p := range deps {
			succ[p] = append(succ[p], i)
		}
	}
	return succ
}

// HasPath reports whether a dependency path from → … → to exists, i.e.
// the edge (from, to) lies in the DAG's transitive closure. from == to
// counts as reachable (the empty path).
func (d *DAG) HasPath(from, to int) bool {
	if from == to {
		return from >= 0 && from < len(d.Deps)
	}
	if from < 0 || to < 0 || from > to || to >= len(d.Deps) {
		return false
	}
	// Walk dependency edges backward from to; every index on a path is in
	// [from, to], so anything below from prunes.
	visited := make([]bool, to+1)
	stack := []int{to}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range d.Deps[n] {
			if p == from {
				return true
			}
			if p > from && !visited[p] {
				visited[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// DependentRatio returns the fraction of transactions that have at least
// one dependency — the x-axis of Figs. 14-16 and Table 9.
func (d *DAG) DependentRatio() float64 {
	if len(d.Deps) == 0 {
		return 0
	}
	n := 0
	for _, deps := range d.Deps {
		if len(deps) > 0 {
			n++
		}
	}
	return float64(n) / float64(len(d.Deps))
}

// CriticalPathLen returns the number of transactions on the longest
// dependency chain, the lower bound on parallel execution rounds.
func (d *DAG) CriticalPathLen() int {
	depth := make([]int, len(d.Deps))
	longest := 0
	for i := range d.Deps { // indices are topologically ordered (edges go forward)
		depth[i] = 1
		for _, p := range d.Deps[i] {
			if depth[p]+1 > depth[i] {
				depth[i] = depth[p] + 1
			}
		}
		if depth[i] > longest {
			longest = depth[i]
		}
	}
	return longest
}

// Block is a batch of transactions plus the dependency DAG discovered in
// the consensus stage.
type Block struct {
	Header       BlockHeader
	Transactions []*Transaction
	DAG          *DAG
}

// NewBlock assembles a block and an empty DAG sized to the transactions.
func NewBlock(header BlockHeader, txs []*Transaction) *Block {
	return &Block{Header: header, Transactions: txs, DAG: NewDAG(len(txs))}
}

// Log is an event emitted by LOG0..LOG4.
type Log struct {
	Address Address
	Topics  []Hash
	Data    []byte
}

// Receipt records the outcome of one executed transaction.
type Receipt struct {
	TxIndex    int
	Status     uint64 // 1 success, 0 reverted/failed
	GasUsed    uint64
	ReturnData []byte
	Logs       []*Log
	// ContractAddress is set for successful contract creations.
	ContractAddress Address
}

// ReceiptStatus values.
const (
	ReceiptFailed  = 0
	ReceiptSuccess = 1
)

// CreateAddress computes the address of a contract deployed by sender with
// the given nonce: low 20 bytes of keccak(rlp([sender, nonce])).
func CreateAddress(sender Address, nonce uint64) Address {
	enc := rlp.Encode(rlp.ListValue(
		rlp.StringValue(sender.Bytes()),
		rlp.Uint64Value(nonce),
	))
	h := keccak.Sum256(enc)
	return BytesToAddress(h[12:])
}
