package types

import "testing"

// FuzzDecodeTransactionRLP asserts the transaction decoder never panics
// and round-trips whatever it accepts.
func FuzzDecodeTransactionRLP(f *testing.F) {
	to := HexToAddress("0x2222222222222222222222222222222222222222")
	f.Add(mkTx(nil, &to).EncodeRLP())
	f.Add(mkTx([]byte{0xa9, 0x05, 0x9c, 0xbb, 1, 2}, &to).EncodeRLP())
	f.Add(mkTx([]byte{1}, nil).EncodeRLP())
	f.Add([]byte{0xc0})
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := DecodeTransactionRLP(data)
		if err != nil {
			return
		}
		back, err := DecodeTransactionRLP(tx.EncodeRLP())
		if err != nil {
			t.Fatalf("accepted tx does not re-decode: %v", err)
		}
		if back.Hash() != tx.Hash() {
			t.Fatal("round-trip changed the transaction")
		}
	})
}

// FuzzDecodeBlockRLP asserts the block decoder never panics and only
// yields valid forward DAGs.
func FuzzDecodeBlockRLP(f *testing.F) {
	f.Add(sampleBlock().EncodeRLP())
	empty := NewBlock(BlockHeader{}, nil)
	f.Add(empty.EncodeRLP())
	f.Add([]byte{0xc3, 0xc0, 0xc0, 0xc0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBlockRLP(data)
		if err != nil {
			return
		}
		for j, deps := range b.DAG.Deps {
			for _, d := range deps {
				if d >= j {
					t.Fatalf("decoder produced non-forward edge %d→%d", d, j)
				}
			}
		}
	})
}
