// Package uint256 implements fixed-size 256-bit unsigned integers with the
// arithmetic and comparison semantics required by the EVM word model:
// wrap-around unsigned ops, two's-complement signed variants, and the
// modular helpers (ADDMOD, MULMOD, EXP, SIGNEXTEND) from the instruction
// set in Table 3 of the MTPU paper.
//
// An Int is four 64-bit limbs in little-endian order (limb 0 is least
// significant). The zero value is the number 0 and is ready to use. All
// arithmetic methods write their result into the receiver and return it,
// so operations can be chained without allocation:
//
//	z := new(uint256.Int).Add(x, y)
package uint256

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// Int is a 256-bit unsigned integer: z = z[0] + z[1]<<64 + z[2]<<128 + z[3]<<192.
type Int [4]uint64

// NewInt returns a new Int set to the uint64 value v.
func NewInt(v uint64) *Int {
	return &Int{v, 0, 0, 0}
}

// Set sets z to x and returns z.
func (z *Int) Set(x *Int) *Int {
	*z = *x
	return z
}

// Clone returns a fresh copy of z.
func (z *Int) Clone() *Int {
	c := *z
	return &c
}

// SetUint64 sets z to the uint64 value v and returns z.
func (z *Int) SetUint64(v uint64) *Int {
	z[0], z[1], z[2], z[3] = v, 0, 0, 0
	return z
}

// Clear sets z to zero and returns z.
func (z *Int) Clear() *Int {
	z[0], z[1], z[2], z[3] = 0, 0, 0, 0
	return z
}

// SetOne sets z to one and returns z.
func (z *Int) SetOne() *Int {
	z[0], z[1], z[2], z[3] = 1, 0, 0, 0
	return z
}

// SetAllOne sets z to 2^256-1 and returns z.
func (z *Int) SetAllOne() *Int {
	m := ^uint64(0)
	z[0], z[1], z[2], z[3] = m, m, m, m
	return z
}

// IsZero reports whether z is zero.
func (z *Int) IsZero() bool {
	return (z[0] | z[1] | z[2] | z[3]) == 0
}

// IsUint64 reports whether z fits in a uint64.
func (z *Int) IsUint64() bool {
	return (z[1] | z[2] | z[3]) == 0
}

// Uint64 returns the low 64 bits of z.
func (z *Int) Uint64() uint64 {
	return z[0]
}

// Uint64WithOverflow returns the low 64 bits of z and whether z overflows a uint64.
func (z *Int) Uint64WithOverflow() (uint64, bool) {
	return z[0], (z[1] | z[2] | z[3]) != 0
}

// BitLen returns the number of bits required to represent z (0 for zero).
func (z *Int) BitLen() int {
	switch {
	case z[3] != 0:
		return 192 + bits.Len64(z[3])
	case z[2] != 0:
		return 128 + bits.Len64(z[2])
	case z[1] != 0:
		return 64 + bits.Len64(z[1])
	default:
		return bits.Len64(z[0])
	}
}

// ByteLen returns the number of bytes required to represent z (0 for zero).
func (z *Int) ByteLen() int {
	return (z.BitLen() + 7) / 8
}

// Sign returns 0 if z is zero, 1 if z is a positive two's-complement value
// (high bit clear), and -1 if the high bit is set.
func (z *Int) Sign() int {
	if z.IsZero() {
		return 0
	}
	if z[3] < 0x8000000000000000 {
		return 1
	}
	return -1
}

// Add sets z = x + y (mod 2^256) and returns z.
func (z *Int) Add(x, y *Int) *Int {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], _ = bits.Add64(x[3], y[3], c)
	return z
}

// AddOverflow sets z = x + y and reports whether the addition wrapped.
func (z *Int) AddOverflow(x, y *Int) (*Int, bool) {
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], c = bits.Add64(x[3], y[3], c)
	return z, c != 0
}

// Sub sets z = x - y (mod 2^256) and returns z.
func (z *Int) Sub(x, y *Int) *Int {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], _ = bits.Sub64(x[3], y[3], b)
	return z
}

// SubOverflow sets z = x - y and reports whether the subtraction borrowed.
func (z *Int) SubOverflow(x, y *Int) (*Int, bool) {
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	return z, b != 0
}

// Neg sets z = -x (mod 2^256) and returns z.
func (z *Int) Neg(x *Int) *Int {
	return z.Sub(&Int{}, x)
}

// Abs sets z to the absolute value of the two's-complement number x.
func (z *Int) Abs(x *Int) *Int {
	if x.Sign() >= 0 {
		return z.Set(x)
	}
	return z.Neg(x)
}

// umul computes the full 512-bit product x*y into res (8 limbs, little endian).
func umul(x, y *Int, res *[8]uint64) {
	var carry, carry2, carry3, res1, res2 uint64

	carry, res[0] = bits.Mul64(x[0], y[0])

	carry, res1 = umulHop(carry, x[1], y[0])
	carry2, res[1] = umulHop(res1, x[0], y[1])

	carry, res1 = umulHop(carry, x[2], y[0])
	carry2, res2 = umulStep(res1, x[1], y[1], carry2)
	carry3, res[2] = umulHop(res2, x[0], y[2])

	carry, res1 = umulHop(carry, x[3], y[0])
	carry2, res2 = umulStep(res1, x[2], y[1], carry2)
	carry3, res1 = umulStep(res2, x[1], y[2], carry3)
	var carry4 uint64
	carry4, res[3] = umulHop(res1, x[0], y[3])

	carry, res1 = umulStep(carry, x[3], y[1], carry2)
	carry2, res2 = umulStep(res1, x[2], y[2], carry3)
	carry3, res[4] = umulStep(res2, x[1], y[3], carry4)

	carry, res1 = umulStep(carry, x[3], y[2], carry2)
	carry2, res[5] = umulStep(res1, x[2], y[3], carry3)

	carry, res[6] = umulStep(carry, x[3], y[3], carry2)
	res[7] = carry
}

// umulStep computes (hi*2^64 + lo) = z + (x*y) + carry.
func umulStep(z, x, y, carry uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(x, y)
	lo, cc := bits.Add64(lo, carry, 0)
	hi, _ = bits.Add64(hi, 0, cc)
	lo, cc = bits.Add64(lo, z, 0)
	hi, _ = bits.Add64(hi, 0, cc)
	return hi, lo
}

// umulHop computes (hi*2^64 + lo) = z + (x*y).
func umulHop(z, x, y uint64) (hi, lo uint64) {
	hi, lo = bits.Mul64(x, y)
	lo, cc := bits.Add64(lo, z, 0)
	hi, _ = bits.Add64(hi, 0, cc)
	return hi, lo
}

// Mul sets z = x * y (mod 2^256) and returns z.
func (z *Int) Mul(x, y *Int) *Int {
	var (
		res              Int
		carry            uint64
		res1, res2, res3 uint64
	)

	carry, res[0] = bits.Mul64(x[0], y[0])
	carry, res1 = umulHop(carry, x[1], y[0])
	carry, res2 = umulHop(carry, x[2], y[0])
	res3 = x[3]*y[0] + carry

	carry, res[1] = umulHop(res1, x[0], y[1])
	carry, res2 = umulStep(res2, x[1], y[1], carry)
	res3 = res3 + x[2]*y[1] + carry

	carry, res[2] = umulHop(res2, x[0], y[2])
	res3 = res3 + x[1]*y[2] + carry

	res[3] = res3 + x[0]*y[3]

	return z.Set(&res)
}

// MulOverflow sets z = x * y and reports whether the full product exceeded 256 bits.
func (z *Int) MulOverflow(x, y *Int) (*Int, bool) {
	var p [8]uint64
	umul(x, y, &p)
	copy(z[:], p[:4])
	return z, (p[4] | p[5] | p[6] | p[7]) != 0
}

// Div sets z = x / y (integer division, z = 0 when y = 0) and returns z.
func (z *Int) Div(x, y *Int) *Int {
	if y.IsZero() || y.Gt(x) {
		return z.Clear()
	}
	if x.Eq(y) {
		return z.SetOne()
	}
	if x.IsUint64() {
		// y <= x, so y also fits.
		return z.SetUint64(x[0] / y[0])
	}
	var quot Int
	udivrem(quot[:], x[:], y, nil)
	return z.Set(&quot)
}

// Mod sets z = x % y (z = 0 when y = 0) and returns z.
func (z *Int) Mod(x, y *Int) *Int {
	if y.IsZero() || x.Eq(y) {
		return z.Clear()
	}
	if x.Lt(y) {
		return z.Set(x)
	}
	if x.IsUint64() {
		return z.SetUint64(x[0] % y[0])
	}
	var quot, rem Int
	udivrem(quot[:], x[:], y, &rem)
	return z.Set(&rem)
}

// DivMod sets z = x / y and m = x % y, returning (z, m). It allows aliasing.
func (z *Int) DivMod(x, y, m *Int) (*Int, *Int) {
	if y.IsZero() {
		return z.Clear(), m.Clear()
	}
	var quot, rem Int
	udivrem(quot[:], x[:], y, &rem)
	return z.Set(&quot), m.Set(&rem)
}

// SDiv sets z = x / y treating both as two's-complement signed numbers.
// Division truncates toward zero; z = 0 when y = 0.
func (z *Int) SDiv(x, y *Int) *Int {
	if x.Sign() >= 0 {
		if y.Sign() >= 0 {
			return z.Div(x, y)
		}
		var ay Int
		ay.Neg(y)
		z.Div(x, &ay)
		return z.Neg(z)
	}
	var ax Int
	ax.Neg(x)
	if y.Sign() >= 0 {
		z.Div(&ax, y)
		return z.Neg(z)
	}
	var ay Int
	ay.Neg(y)
	return z.Div(&ax, &ay)
}

// SMod sets z = x % y treating both as signed; the result has the sign of x.
func (z *Int) SMod(x, y *Int) *Int {
	sx := x.Sign()
	var ax, ay Int
	ax.Abs(x)
	ay.Abs(y)
	z.Mod(&ax, &ay)
	if sx < 0 {
		z.Neg(z)
	}
	return z
}

// AddMod sets z = (x + y) % m, handling the 257-bit intermediate sum; z = 0 when m = 0.
func (z *Int) AddMod(x, y, m *Int) *Int {
	if m.IsZero() {
		return z.Clear()
	}
	var sum Int
	_, carry := sum.AddOverflow(x, y)
	if !carry {
		return z.Mod(&sum, m)
	}
	// 5-limb dividend: sum + 2^256.
	u := [5]uint64{sum[0], sum[1], sum[2], sum[3], 1}
	var quot [5]uint64
	var rem Int
	udivrem(quot[:], u[:], m, &rem)
	return z.Set(&rem)
}

// MulMod sets z = (x * y) % m using the full 512-bit product; z = 0 when m = 0.
func (z *Int) MulMod(x, y, m *Int) *Int {
	if m.IsZero() {
		return z.Clear()
	}
	var p [8]uint64
	umul(x, y, &p)
	if (p[4] | p[5] | p[6] | p[7]) == 0 {
		var lo Int
		copy(lo[:], p[:4])
		return z.Mod(&lo, m)
	}
	var quot [8]uint64
	var rem Int
	udivrem(quot[:], p[:], m, &rem)
	return z.Set(&rem)
}

// Exp sets z = x^y (mod 2^256) by square-and-multiply and returns z.
func (z *Int) Exp(x, y *Int) *Int {
	res := Int{1, 0, 0, 0}
	multiplier := *x
	expBitLen := y.BitLen()

	curBit := 0
	word := y[0]
	for ; curBit < expBitLen && curBit < 64; curBit++ {
		if word&1 == 1 {
			res.Mul(&res, &multiplier)
		}
		multiplier.Mul(&multiplier, &multiplier)
		word >>= 1
	}
	word = y[1]
	for ; curBit < expBitLen && curBit < 128; curBit++ {
		if word&1 == 1 {
			res.Mul(&res, &multiplier)
		}
		multiplier.Mul(&multiplier, &multiplier)
		word >>= 1
	}
	word = y[2]
	for ; curBit < expBitLen && curBit < 192; curBit++ {
		if word&1 == 1 {
			res.Mul(&res, &multiplier)
		}
		multiplier.Mul(&multiplier, &multiplier)
		word >>= 1
	}
	word = y[3]
	for ; curBit < expBitLen && curBit < 256; curBit++ {
		if word&1 == 1 {
			res.Mul(&res, &multiplier)
		}
		multiplier.Mul(&multiplier, &multiplier)
		word >>= 1
	}
	return z.Set(&res)
}

// SignExtend sets z to x sign-extended from byte position b (EVM SIGNEXTEND).
// Byte 0 is the least-significant byte. If b > 30, z = x.
func (z *Int) SignExtend(b, x *Int) *Int {
	if b.IsUint64() && b[0] <= 30 {
		byteNum := b[0]
		bitPos := byteNum*8 + 7
		word := bitPos / 64
		bit := bitPos % 64
		signSet := x[word]&(1<<bit) != 0
		z.Set(x)
		if signSet {
			// Set all bits above bitPos.
			z[word] |= ^uint64(0) << bit
			for i := word + 1; i < 4; i++ {
				z[i] = ^uint64(0)
			}
		} else {
			z[word] &= ^uint64(0) >> (63 - bit)
			for i := word + 1; i < 4; i++ {
				z[i] = 0
			}
		}
		return z
	}
	return z.Set(x)
}

// Cmp compares z and x as unsigned integers: -1 if z < x, 0 if equal, +1 if z > x.
func (z *Int) Cmp(x *Int) int {
	for i := 3; i >= 0; i-- {
		if z[i] < x[i] {
			return -1
		}
		if z[i] > x[i] {
			return 1
		}
	}
	return 0
}

// Lt reports whether z < x (unsigned).
func (z *Int) Lt(x *Int) bool {
	_, borrow := bits.Sub64(z[0], x[0], 0)
	_, borrow = bits.Sub64(z[1], x[1], borrow)
	_, borrow = bits.Sub64(z[2], x[2], borrow)
	_, borrow = bits.Sub64(z[3], x[3], borrow)
	return borrow != 0
}

// Gt reports whether z > x (unsigned).
func (z *Int) Gt(x *Int) bool {
	return x.Lt(z)
}

// Slt reports whether z < x treating both as signed.
func (z *Int) Slt(x *Int) bool {
	zSign := z.Sign()
	xSign := x.Sign()
	switch {
	case zSign >= 0 && xSign < 0:
		return false
	case zSign < 0 && xSign >= 0:
		return true
	default:
		return z.Lt(x)
	}
}

// Sgt reports whether z > x treating both as signed.
func (z *Int) Sgt(x *Int) bool {
	return x.Slt(z)
}

// Eq reports whether z equals x.
func (z *Int) Eq(x *Int) bool {
	return *z == *x
}

// And sets z = x & y and returns z.
func (z *Int) And(x, y *Int) *Int {
	z[0], z[1], z[2], z[3] = x[0]&y[0], x[1]&y[1], x[2]&y[2], x[3]&y[3]
	return z
}

// Or sets z = x | y and returns z.
func (z *Int) Or(x, y *Int) *Int {
	z[0], z[1], z[2], z[3] = x[0]|y[0], x[1]|y[1], x[2]|y[2], x[3]|y[3]
	return z
}

// Xor sets z = x ^ y and returns z.
func (z *Int) Xor(x, y *Int) *Int {
	z[0], z[1], z[2], z[3] = x[0]^y[0], x[1]^y[1], x[2]^y[2], x[3]^y[3]
	return z
}

// Not sets z = ^x and returns z.
func (z *Int) Not(x *Int) *Int {
	z[0], z[1], z[2], z[3] = ^x[0], ^x[1], ^x[2], ^x[3]
	return z
}

// Byte implements the EVM BYTE opcode: z = the n-th byte of x where byte 0
// is the most significant. If n > 31, z = 0. The receiver is set and returned.
func (z *Int) Byte(n, x *Int) *Int {
	if n.IsUint64() && n[0] < 32 {
		idx := n[0]
		word := 3 - idx/8
		shift := 56 - 8*(idx%8)
		return z.SetUint64((x[word] >> shift) & 0xff)
	}
	return z.Clear()
}

// Lsh sets z = x << n and returns z.
func (z *Int) Lsh(x *Int, n uint) *Int {
	if n >= 256 {
		return z.Clear()
	}
	var t Int
	t.Set(x)
	for n >= 64 {
		t[3], t[2], t[1], t[0] = t[2], t[1], t[0], 0
		n -= 64
	}
	if n == 0 {
		return z.Set(&t)
	}
	z[3] = t[3]<<n | t[2]>>(64-n)
	z[2] = t[2]<<n | t[1]>>(64-n)
	z[1] = t[1]<<n | t[0]>>(64-n)
	z[0] = t[0] << n
	return z
}

// Rsh sets z = x >> n (logical shift) and returns z.
func (z *Int) Rsh(x *Int, n uint) *Int {
	if n >= 256 {
		return z.Clear()
	}
	var t Int
	t.Set(x)
	for n >= 64 {
		t[0], t[1], t[2], t[3] = t[1], t[2], t[3], 0
		n -= 64
	}
	if n == 0 {
		return z.Set(&t)
	}
	z[0] = t[0]>>n | t[1]<<(64-n)
	z[1] = t[1]>>n | t[2]<<(64-n)
	z[2] = t[2]>>n | t[3]<<(64-n)
	z[3] = t[3] >> n
	return z
}

// SRsh sets z = x >> n treating x as signed (arithmetic shift) and returns z.
func (z *Int) SRsh(x *Int, n uint) *Int {
	if x.Sign() >= 0 {
		return z.Rsh(x, n)
	}
	if n >= 256 {
		return z.SetAllOne()
	}
	z.Rsh(x, n)
	// Fill vacated high bits with ones.
	var mask Int
	mask.SetAllOne()
	mask.Lsh(&mask, 256-n)
	return z.Or(z, &mask)
}

// SetBytes interprets buf as a big-endian unsigned integer and sets z to it.
// Input longer than 32 bytes keeps the low-order 32 bytes (EVM semantics).
func (z *Int) SetBytes(buf []byte) *Int {
	if len(buf) > 32 {
		buf = buf[len(buf)-32:]
	}
	z.Clear()
	for i := 0; i < len(buf); i++ {
		limb := (len(buf) - 1 - i) / 8
		shift := uint((len(buf) - 1 - i) % 8 * 8)
		z[limb] |= uint64(buf[i]) << shift
	}
	return z
}

// Bytes32 returns z as a big-endian 32-byte array.
func (z *Int) Bytes32() [32]byte {
	var b [32]byte
	binary.BigEndian.PutUint64(b[0:8], z[3])
	binary.BigEndian.PutUint64(b[8:16], z[2])
	binary.BigEndian.PutUint64(b[16:24], z[1])
	binary.BigEndian.PutUint64(b[24:32], z[0])
	return b
}

// Bytes returns the minimal big-endian byte representation of z (empty for zero).
func (z *Int) Bytes() []byte {
	b := z.Bytes32()
	return b[32-z.ByteLen():]
}

// PutBytes32 writes z into dst as big-endian; dst must be at least 32 bytes.
func (z *Int) PutBytes32(dst []byte) {
	binary.BigEndian.PutUint64(dst[0:8], z[3])
	binary.BigEndian.PutUint64(dst[8:16], z[2])
	binary.BigEndian.PutUint64(dst[16:24], z[1])
	binary.BigEndian.PutUint64(dst[24:32], z[0])
}

const hexDigits = "0123456789abcdef"

// Hex returns the canonical 0x-prefixed hexadecimal representation of z
// without leading zeros ("0x0" for zero).
func (z *Int) Hex() string {
	if z.IsZero() {
		return "0x0"
	}
	b := z.Bytes()
	out := make([]byte, 0, 2+2*len(b))
	out = append(out, '0', 'x')
	first := true
	for _, v := range b {
		hi, lo := v>>4, v&0xf
		if first && hi == 0 {
			out = append(out, hexDigits[lo])
		} else {
			out = append(out, hexDigits[hi], hexDigits[lo])
		}
		first = false
	}
	return string(out)
}

// Dec returns the decimal string representation of z.
func (z *Int) Dec() string {
	if z.IsZero() {
		return "0"
	}
	// Repeated division by 10^19 (largest power of ten in a uint64).
	const divisor = 10000000000000000000
	var buf [80]byte
	pos := len(buf)
	t := *z
	for !t.IsZero() {
		var rem Int
		q := new(Int)
		q.DivMod(&t, NewInt(divisor), &rem)
		r := rem[0]
		if q.IsZero() {
			for r > 0 {
				pos--
				buf[pos] = byte('0' + r%10)
				r /= 10
			}
		} else {
			for i := 0; i < 19; i++ {
				pos--
				buf[pos] = byte('0' + r%10)
				r /= 10
			}
		}
		t = *q
	}
	return string(buf[pos:])
}

// String returns the decimal representation of z.
func (z *Int) String() string {
	return z.Dec()
}

// ErrSyntax is returned when parsing malformed numeric input.
var ErrSyntax = errors.New("uint256: invalid syntax")

// ErrRange is returned when a parsed value does not fit in 256 bits.
var ErrRange = errors.New("uint256: value out of 256-bit range")

// SetFromHex sets z from a 0x-prefixed hexadecimal string.
func (z *Int) SetFromHex(s string) error {
	if len(s) < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X') {
		return ErrSyntax
	}
	s = s[2:]
	if len(s) > 64 {
		return ErrRange
	}
	z.Clear()
	for i := 0; i < len(s); i++ {
		var v uint64
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			v = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v = uint64(c-'A') + 10
		default:
			return ErrSyntax
		}
		z.Lsh(z, 4)
		z[0] |= v
	}
	return nil
}

// SetFromDecimal sets z from a decimal string.
func (z *Int) SetFromDecimal(s string) error {
	if len(s) == 0 {
		return ErrSyntax
	}
	z.Clear()
	ten := NewInt(10)
	var d Int
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return ErrSyntax
		}
		if _, over := z.MulOverflow(z, ten); over {
			return ErrRange
		}
		d.SetUint64(uint64(c - '0'))
		if _, over := z.AddOverflow(z, &d); over {
			return ErrRange
		}
	}
	return nil
}

// MustFromHex parses a 0x-prefixed hex string, panicking on error. For tests
// and static initialisers.
func MustFromHex(s string) *Int {
	z := new(Int)
	if err := z.SetFromHex(s); err != nil {
		panic(err)
	}
	return z
}

// MustFromDecimal parses a decimal string, panicking on error.
func MustFromDecimal(s string) *Int {
	z := new(Int)
	if err := z.SetFromDecimal(s); err != nil {
		panic(err)
	}
	return z
}

// MarshalText implements encoding.TextMarshaler using the hex form.
func (z *Int) MarshalText() ([]byte, error) {
	return []byte(z.Hex()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler accepting hex or decimal.
func (z *Int) UnmarshalText(text []byte) error {
	s := string(text)
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		return z.SetFromHex(s)
	}
	return z.SetFromDecimal(s)
}
