package uint256

import "math/bits"

// This file implements multi-precision unsigned division (Knuth's
// Algorithm D, TAOCP vol. 2 §4.3.1) for dividends of up to 8 limbs —
// enough for the 512-bit intermediates produced by MULMOD — divided by a
// 256-bit divisor.

// udivrem divides u (little-endian limbs, any length up to 8) by the
// non-zero divisor d. The quotient is written into quot (which must have
// len(u) limbs available; unused high limbs are zeroed) and, if rem is
// non-nil, the remainder is stored into rem.
func udivrem(quot, u []uint64, d *Int, rem *Int) {
	var dLen int
	for i := len(d) - 1; i >= 0; i-- {
		if d[i] != 0 {
			dLen = i + 1
			break
		}
	}

	shift := uint(bits.LeadingZeros64(d[dLen-1]))

	var dnStorage Int
	dn := dnStorage[:dLen]
	for i := dLen - 1; i > 0; i-- {
		dn[i] = d[i] << shift
		if shift > 0 {
			dn[i] |= d[i-1] >> (64 - shift)
		}
	}
	dn[0] = d[0] << shift

	var uLen int
	for i := len(u) - 1; i >= 0; i-- {
		if u[i] != 0 {
			uLen = i + 1
			break
		}
	}

	for i := range quot {
		quot[i] = 0
	}

	if uLen < dLen {
		if rem != nil {
			rem.Clear()
			copy(rem[:], u)
		}
		return
	}

	var unStorage [9]uint64
	un := unStorage[:uLen+1]
	un[uLen] = 0
	if shift > 0 {
		un[uLen] = u[uLen-1] >> (64 - shift)
	}
	for i := uLen - 1; i > 0; i-- {
		un[i] = u[i] << shift
		if shift > 0 {
			un[i] |= u[i-1] >> (64 - shift)
		}
	}
	un[0] = u[0] << shift

	// Single-limb divisor fast path.
	if dLen == 1 {
		dw := dn[0]
		r := udivremBy1(quot, un, dw)
		if rem != nil {
			rem.SetUint64(r >> shift)
		}
		return
	}

	udivremKnuth(quot, un, dn)

	if rem != nil {
		rem.Clear()
		for i := 0; i < dLen; i++ {
			rem[i] = un[i] >> shift
			if shift > 0 && i+1 < len(un) {
				rem[i] |= un[i+1] << (64 - shift)
			}
		}
	}
}

// udivremBy1 divides the normalized dividend u by the single normalized
// word d, writing the quotient into quot and returning the (normalized)
// remainder.
func udivremBy1(quot, u []uint64, d uint64) uint64 {
	reciprocal := reciprocal2by1(d)
	rem := u[len(u)-1] // high limb is the initial remainder (< d after normalization)
	for j := len(u) - 2; j >= 0; j-- {
		quot[j], rem = udivrem2by1(rem, u[j], d, reciprocal)
	}
	return rem
}

// reciprocal2by1 computes ⌊(2^128 - 1) / d⌋ - 2^64 for a normalized d
// (high bit set), per Möller & Granlund, "Improved division by invariant
// integers".
func reciprocal2by1(d uint64) uint64 {
	reciprocal, _ := bits.Div64(^d, ^uint64(0), d)
	return reciprocal
}

// udivrem2by1 divides the two-limb value (uh, ul) by the normalized d using
// the precomputed reciprocal, returning quotient and remainder.
func udivrem2by1(uh, ul, d, reciprocal uint64) (quot, rem uint64) {
	qh, ql := bits.Mul64(reciprocal, uh)
	ql, carry := bits.Add64(ql, ul, 0)
	qh, _ = bits.Add64(qh, uh, carry)
	qh++

	r := ul - qh*d

	if r > ql {
		qh--
		r += d
	}

	if r >= d {
		qh++
		r -= d
	}

	return qh, r
}

// udivremKnuth implements the core Algorithm D loop for a normalized
// dividend u (len m+n+1) and normalized divisor d (len n >= 2). The
// quotient is written into quot and u is overwritten by the normalized
// remainder.
func udivremKnuth(quot, u, d []uint64) {
	dh := d[len(d)-1]
	dl := d[len(d)-2]
	reciprocal := reciprocal2by1(dh)

	for j := len(u) - len(d) - 1; j >= 0; j-- {
		u2 := u[j+len(d)]
		u1 := u[j+len(d)-1]
		u0 := u[j+len(d)-2]

		var qhat, rhat uint64
		if u2 >= dh {
			// Quotient digit would overflow; clamp to the max.
			qhat = ^uint64(0)
		} else {
			qhat, rhat = udivrem2by1(u2, u1, dh, reciprocal)
			ph, pl := bits.Mul64(qhat, dl)
			if ph > rhat || (ph == rhat && pl > u0) {
				qhat--
				// A second correction step is handled by the add-back below.
			}
		}

		// Multiply-and-subtract qhat*d from u[j : j+len(d)+1].
		borrow := subMulTo(u[j:j+len(d)], d, qhat)
		u[j+len(d)] = u2 - borrow
		if u2 < borrow {
			// qhat was one too large: add d back.
			qhat--
			u[j+len(d)] += addTo(u[j:j+len(d)], d)
		}

		quot[j] = qhat
	}
}

// subMulTo computes x -= y*multiplier limb-wise, returning the final borrow.
func subMulTo(x, y []uint64, multiplier uint64) uint64 {
	var borrow uint64
	for i := 0; i < len(y); i++ {
		s, carry1 := bits.Sub64(x[i], borrow, 0)
		ph, pl := bits.Mul64(y[i], multiplier)
		t, carry2 := bits.Sub64(s, pl, 0)
		x[i] = t
		borrow = ph + carry1 + carry2
	}
	return borrow
}

// addTo computes x += y limb-wise, returning the final carry.
func addTo(x, y []uint64) uint64 {
	var carry uint64
	for i := 0; i < len(y); i++ {
		x[i], carry = bits.Add64(x[i], y[i], carry)
	}
	return carry
}
