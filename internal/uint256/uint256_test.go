package uint256

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// bigMod is 2^256, the word modulus.
var bigMod = new(big.Int).Lsh(big.NewInt(1), 256)

func toBig(z *Int) *big.Int {
	b := z.Bytes32()
	return new(big.Int).SetBytes(b[:])
}

func fromBig(b *big.Int) *Int {
	var v big.Int
	v.Mod(b, bigMod)
	z := new(Int)
	z.SetBytes(v.Bytes())
	return z
}

// toSignedBig interprets z as a two's-complement signed number.
func toSignedBig(z *Int) *big.Int {
	b := toBig(z)
	if z.Sign() < 0 {
		b.Sub(b, bigMod)
	}
	return b
}

// randInt produces Ints with interesting bit patterns: small, sparse,
// dense, and boundary values.
func randInt(r *rand.Rand) *Int {
	z := new(Int)
	switch r.Intn(6) {
	case 0:
		z.SetUint64(r.Uint64() % 1024)
	case 1:
		z.SetUint64(r.Uint64())
	case 2:
		z[r.Intn(4)] = r.Uint64()
	case 3:
		z[0], z[1], z[2], z[3] = r.Uint64(), r.Uint64(), r.Uint64(), r.Uint64()
	case 4:
		z.SetAllOne()
		z[r.Intn(4)] = r.Uint64()
	case 5:
		// Power-of-two neighborhood.
		var one Int
		one.SetOne()
		z.Lsh(&one, uint(r.Intn(256)))
		if r.Intn(2) == 0 {
			z.Sub(z, &one)
		}
	}
	return z
}

func checkBinop(t *testing.T, name string, op func(z, x, y *Int) *Int, ref func(r, x, y *big.Int) *big.Int) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		x, y := randInt(r), randInt(r)
		z := new(Int)
		op(z, x, y)
		want := fromBig(ref(new(big.Int), toBig(x), toBig(y)))
		if !z.Eq(want) {
			t.Fatalf("%s(%s, %s) = %s, want %s", name, x.Hex(), y.Hex(), z.Hex(), want.Hex())
		}
	}
}

func TestAdd(t *testing.T) {
	checkBinop(t, "Add", (*Int).Add, (*big.Int).Add)
}

func TestSub(t *testing.T) {
	checkBinop(t, "Sub", (*Int).Sub, (*big.Int).Sub)
}

func TestMul(t *testing.T) {
	checkBinop(t, "Mul", (*Int).Mul, (*big.Int).Mul)
}

func TestDiv(t *testing.T) {
	checkBinop(t, "Div", (*Int).Div, func(r, x, y *big.Int) *big.Int {
		if y.Sign() == 0 {
			return r.SetInt64(0)
		}
		return r.Div(x, y)
	})
}

func TestMod(t *testing.T) {
	checkBinop(t, "Mod", (*Int).Mod, func(r, x, y *big.Int) *big.Int {
		if y.Sign() == 0 {
			return r.SetInt64(0)
		}
		return r.Mod(x, y)
	})
}

func TestSDiv(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		x, y := randInt(r), randInt(r)
		z := new(Int).SDiv(x, y)
		want := new(big.Int)
		if toBig(y).Sign() != 0 {
			want.Quo(toSignedBig(x), toSignedBig(y))
		}
		if got := toSignedBig(z); got.Cmp(fromSignedRef(want)) != 0 {
			t.Fatalf("SDiv(%s, %s) = %s, want %s", x.Hex(), y.Hex(), got, want)
		}
	}
}

func TestSMod(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		x, y := randInt(r), randInt(r)
		z := new(Int).SMod(x, y)
		want := new(big.Int)
		if toBig(y).Sign() != 0 {
			want.Rem(toSignedBig(x), toSignedBig(y))
		}
		if got := toSignedBig(z); got.Cmp(fromSignedRef(want)) != 0 {
			t.Fatalf("SMod(%s, %s) = %s, want %s", x.Hex(), y.Hex(), got, want)
		}
	}
}

// fromSignedRef normalizes a signed reference result into the same signed
// range as toSignedBig output.
func fromSignedRef(b *big.Int) *big.Int {
	v := new(big.Int).Mod(b, bigMod)
	half := new(big.Int).Rsh(bigMod, 1)
	if v.Cmp(half) >= 0 {
		v.Sub(v, bigMod)
	}
	return v
}

func TestAddMod(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		x, y, m := randInt(r), randInt(r), randInt(r)
		z := new(Int).AddMod(x, y, m)
		want := new(big.Int)
		if toBig(m).Sign() != 0 {
			want.Add(toBig(x), toBig(y))
			want.Mod(want, toBig(m))
		}
		if toBig(z).Cmp(want) != 0 {
			t.Fatalf("AddMod(%s, %s, %s) = %s, want %s", x.Hex(), y.Hex(), m.Hex(), z.Hex(), want)
		}
	}
}

func TestMulMod(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		x, y, m := randInt(r), randInt(r), randInt(r)
		z := new(Int).MulMod(x, y, m)
		want := new(big.Int)
		if toBig(m).Sign() != 0 {
			want.Mul(toBig(x), toBig(y))
			want.Mod(want, toBig(m))
		}
		if toBig(z).Cmp(want) != 0 {
			t.Fatalf("MulMod(%s, %s, %s) = %s, want %s", x.Hex(), y.Hex(), m.Hex(), z.Hex(), want)
		}
	}
}

func TestExp(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		x := randInt(r)
		y := NewInt(r.Uint64() % 512) // keep reference exponent tractable
		z := new(Int).Exp(x, y)
		want := new(big.Int).Exp(toBig(x), toBig(y), bigMod)
		if toBig(z).Cmp(want) != 0 {
			t.Fatalf("Exp(%s, %s) = %s, want %s", x.Hex(), y.Hex(), z.Hex(), want)
		}
	}
	// Full-width exponents must still terminate and reduce mod 2^256.
	base := NewInt(3)
	exp := new(Int).SetAllOne()
	got := new(Int).Exp(base, exp)
	want := new(big.Int).Exp(big.NewInt(3), toBig(exp), bigMod)
	if toBig(got).Cmp(want) != 0 {
		t.Fatalf("Exp(3, 2^256-1) = %s, want %s", got.Hex(), want)
	}
}

func TestSignExtend(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		x := randInt(r)
		b := NewInt(uint64(r.Intn(35)))
		z := new(Int).SignExtend(b, x)
		// Reference: if byte index > 30, unchanged; otherwise sign-extend.
		want := toBig(x)
		if b.Uint64() <= 30 {
			bitPos := uint(b.Uint64()*8 + 7)
			mask := new(big.Int).Lsh(big.NewInt(1), bitPos+1)
			mask.Sub(mask, big.NewInt(1))
			trunc := new(big.Int).And(want, mask)
			if want.Bit(int(bitPos)) == 1 {
				// Negative: fill high bits with ones.
				fill := new(big.Int).Sub(bigMod, new(big.Int).Add(mask, big.NewInt(1)))
				_ = fill
				hi := new(big.Int).Sub(bigMod, new(big.Int).Add(mask, big.NewInt(1)))
				trunc.Add(trunc, new(big.Int).Add(hi, mask).Sub(new(big.Int).Sub(bigMod, big.NewInt(1)), mask))
				// Simpler: result = trunc | (2^256-1 ^ mask)
				trunc = new(big.Int).And(want, mask)
				ones := new(big.Int).Sub(bigMod, big.NewInt(1))
				highOnes := new(big.Int).Xor(ones, mask)
				trunc.Or(trunc, highOnes)
			}
			want = trunc
		}
		if toBig(z).Cmp(want) != 0 {
			t.Fatalf("SignExtend(%d, %s) = %s, want %s", b.Uint64(), x.Hex(), z.Hex(), want)
		}
	}
}

func TestShifts(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 3000; i++ {
		x := randInt(r)
		n := uint(r.Intn(300))
		lsh := new(Int).Lsh(x, n)
		wantL := fromBig(new(big.Int).Lsh(toBig(x), n))
		if !lsh.Eq(wantL) {
			t.Fatalf("Lsh(%s, %d) = %s, want %s", x.Hex(), n, lsh.Hex(), wantL.Hex())
		}
		rsh := new(Int).Rsh(x, n)
		wantR := fromBig(new(big.Int).Rsh(toBig(x), n))
		if !rsh.Eq(wantR) {
			t.Fatalf("Rsh(%s, %d) = %s, want %s", x.Hex(), n, rsh.Hex(), wantR.Hex())
		}
		srsh := new(Int).SRsh(x, n)
		shift := n
		if shift > 255 {
			shift = 255
		}
		wantS := fromSignedRef(new(big.Int).Rsh(toSignedBig(x), shift))
		if got := toSignedBig(srsh); got.Cmp(wantS) != 0 {
			t.Fatalf("SRsh(%s, %d) = %s, want %s", x.Hex(), n, got, wantS)
		}
	}
}

func TestComparisons(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 3000; i++ {
		x, y := randInt(r), randInt(r)
		bx, by := toBig(x), toBig(y)
		if got, want := x.Lt(y), bx.Cmp(by) < 0; got != want {
			t.Fatalf("Lt(%s, %s) = %v", x.Hex(), y.Hex(), got)
		}
		if got, want := x.Gt(y), bx.Cmp(by) > 0; got != want {
			t.Fatalf("Gt(%s, %s) = %v", x.Hex(), y.Hex(), got)
		}
		if got, want := x.Cmp(y), bx.Cmp(by); got != want {
			t.Fatalf("Cmp(%s, %s) = %d, want %d", x.Hex(), y.Hex(), got, want)
		}
		sx, sy := toSignedBig(x), toSignedBig(y)
		if got, want := x.Slt(y), sx.Cmp(sy) < 0; got != want {
			t.Fatalf("Slt(%s, %s) = %v", x.Hex(), y.Hex(), got)
		}
		if got, want := x.Sgt(y), sx.Cmp(sy) > 0; got != want {
			t.Fatalf("Sgt(%s, %s) = %v", x.Hex(), y.Hex(), got)
		}
	}
}

func TestByteOp(t *testing.T) {
	x := MustFromHex("0x0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
	for i := 0; i < 32; i++ {
		got := new(Int).Byte(NewInt(uint64(i)), x)
		if got.Uint64() != uint64(i+1) {
			t.Fatalf("Byte(%d) = %d, want %d", i, got.Uint64(), i+1)
		}
	}
	if got := new(Int).Byte(NewInt(32), x); !got.IsZero() {
		t.Fatalf("Byte(32) = %s, want 0", got.Hex())
	}
	huge := new(Int).SetAllOne()
	if got := new(Int).Byte(huge, x); !got.IsZero() {
		t.Fatalf("Byte(2^256-1) = %s, want 0", got.Hex())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(b [32]byte) bool {
		z := new(Int).SetBytes(b[:])
		return z.Bytes32() == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSetBytesShort(t *testing.T) {
	z := new(Int).SetBytes([]byte{0x12, 0x34})
	if z.Uint64() != 0x1234 {
		t.Fatalf("SetBytes short = %s", z.Hex())
	}
	// Over-long input keeps low-order 32 bytes.
	long := make([]byte, 40)
	long[8] = 0xaa // first byte of the low-order 32
	z.SetBytes(long)
	want := new(Int).Lsh(NewInt(0xaa), 31*8)
	if !z.Eq(want) {
		t.Fatalf("SetBytes long = %s, want %s", z.Hex(), want.Hex())
	}
}

func TestDecimalAndHexStrings(t *testing.T) {
	cases := []string{"0", "1", "10", "255", "256", "1000000000000000000",
		"115792089237316195423570985008687907853269984665640564039457584007913129639935"}
	for _, c := range cases {
		z := MustFromDecimal(c)
		if z.Dec() != c {
			t.Fatalf("Dec(%s) = %s", c, z.Dec())
		}
	}
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 500; i++ {
		x := randInt(r)
		if got, want := x.Dec(), toBig(x).String(); got != want {
			t.Fatalf("Dec(%s) = %s, want %s", x.Hex(), got, want)
		}
		var back Int
		if err := back.SetFromHex(x.Hex()); err != nil {
			t.Fatalf("SetFromHex(%s): %v", x.Hex(), err)
		}
		if !back.Eq(x) {
			t.Fatalf("hex round-trip %s -> %s", x.Hex(), back.Hex())
		}
		if err := back.SetFromDecimal(x.Dec()); err != nil {
			t.Fatalf("SetFromDecimal(%s): %v", x.Dec(), err)
		}
		if !back.Eq(x) {
			t.Fatalf("dec round-trip %s", x.Dec())
		}
	}
}

func TestParseErrors(t *testing.T) {
	var z Int
	if err := z.SetFromHex("1234"); err != ErrSyntax {
		t.Fatalf("missing prefix: %v", err)
	}
	if err := z.SetFromHex("0x" + string(make([]byte, 65))); err == nil {
		t.Fatal("oversized hex accepted")
	}
	if err := z.SetFromHex("0xzz"); err != ErrSyntax {
		t.Fatalf("bad digit: %v", err)
	}
	if err := z.SetFromDecimal(""); err != ErrSyntax {
		t.Fatalf("empty decimal: %v", err)
	}
	if err := z.SetFromDecimal("12a"); err != ErrSyntax {
		t.Fatalf("bad decimal: %v", err)
	}
	// 2^256 exactly must overflow.
	if err := z.SetFromDecimal("115792089237316195423570985008687907853269984665640564039457584007913129639936"); err != ErrRange {
		t.Fatalf("overflow decimal: %v", err)
	}
}

func TestOverflowFlags(t *testing.T) {
	max := new(Int).SetAllOne()
	one := NewInt(1)
	if _, over := new(Int).AddOverflow(max, one); !over {
		t.Fatal("AddOverflow missed wrap")
	}
	if _, over := new(Int).AddOverflow(one, one); over {
		t.Fatal("AddOverflow false positive")
	}
	if _, over := new(Int).SubOverflow(one, max); !over {
		t.Fatal("SubOverflow missed borrow")
	}
	if _, over := new(Int).MulOverflow(max, max); !over {
		t.Fatal("MulOverflow missed overflow")
	}
	big1 := new(Int).Lsh(NewInt(1), 128)
	if _, over := new(Int).MulOverflow(big1, big1); !over {
		t.Fatal("MulOverflow 2^128*2^128 missed")
	}
	if _, over := new(Int).MulOverflow(NewInt(123456), NewInt(654321)); over {
		t.Fatal("MulOverflow false positive")
	}
}

func TestDivModProperty(t *testing.T) {
	// x = q*y + r with r < y, for all non-zero y.
	r := rand.New(rand.NewSource(16))
	for i := 0; i < 3000; i++ {
		x, y := randInt(r), randInt(r)
		if y.IsZero() {
			continue
		}
		var q, rem Int
		q.DivMod(x, y, &rem)
		if !rem.Lt(y) {
			t.Fatalf("rem >= divisor: %s %% %s = %s", x.Hex(), y.Hex(), rem.Hex())
		}
		var back Int
		back.Mul(&q, y)
		back.Add(&back, &rem)
		if !back.Eq(x) {
			t.Fatalf("q*y+r != x for %s / %s", x.Hex(), y.Hex())
		}
	}
}

func TestBitLenAndSign(t *testing.T) {
	if (&Int{}).BitLen() != 0 {
		t.Fatal("BitLen(0) != 0")
	}
	if NewInt(1).BitLen() != 1 {
		t.Fatal("BitLen(1) != 1")
	}
	if new(Int).SetAllOne().BitLen() != 256 {
		t.Fatal("BitLen(max) != 256")
	}
	if (&Int{}).Sign() != 0 || NewInt(5).Sign() != 1 {
		t.Fatal("Sign basic")
	}
	neg := new(Int).SetAllOne()
	if neg.Sign() != -1 {
		t.Fatal("Sign(-1) != -1")
	}
}

func TestMarshalText(t *testing.T) {
	x := MustFromDecimal("123456789012345678901234567890")
	txt, err := x.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var y Int
	if err := y.UnmarshalText(txt); err != nil {
		t.Fatal(err)
	}
	if !x.Eq(&y) {
		t.Fatalf("text round-trip: %s vs %s", x.Hex(), y.Hex())
	}
	if err := y.UnmarshalText([]byte("42")); err != nil || y.Uint64() != 42 {
		t.Fatalf("decimal text: %v %s", err, y.Hex())
	}
}

func BenchmarkMul(b *testing.B) {
	x := MustFromHex("0xfedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210")
	y := MustFromHex("0x0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	z := new(Int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Mul(x, y)
	}
}

func BenchmarkDiv(b *testing.B) {
	x := MustFromHex("0xfedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210")
	y := MustFromHex("0x123456789abcdef0123456789abcdef")
	z := new(Int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Div(x, y)
	}
}
