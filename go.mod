module mtpu

go 1.24
