// Package repro hosts the top-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§4), each
// regenerating its artifact on the simulated MTPU and publishing the
// headline numbers via b.ReportMetric. The printable tables themselves
// come from `go run ./cmd/mtpu-bench all`; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package repro

import (
	"sync"
	"testing"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/evm"
	"mtpu/internal/experiments"
	"mtpu/internal/workload"
)

var (
	envOnce sync.Once
	env     *experiments.Env
)

func benchEnv() *experiments.Env {
	envOnce.Do(func() { env = experiments.NewEnv(experiments.DefaultSeed) })
	return env
}

// BenchmarkTable1_SCTOverheadShare regenerates the execution-overhead
// row of Table 1 (68% SCTs → ~90% of execution time).
func BenchmarkTable1_SCTOverheadShare(b *testing.B) {
	e := benchEnv()
	var overhead float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(e)
		overhead = rows[len(rows)-1].OverheadShare
	}
	b.ReportMetric(overhead*100, "2021_overhead_%")
}

// BenchmarkTable2_BytecodeShare regenerates Table 2 (bytecode share of
// the loaded execution context).
func BenchmarkTable2_BytecodeShare(b *testing.B) {
	e := benchEnv()
	var share float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(e)
		share = 0
		for _, r := range rows {
			share += r.BytecodeShare
		}
		share /= float64(len(rows))
	}
	b.ReportMetric(share*100, "avg_bytecode_%")
}

// BenchmarkTable6_InstructionMix regenerates Table 6 (instruction
// breakdown by functional unit).
func BenchmarkTable6_InstructionMix(b *testing.B) {
	e := benchEnv()
	var stack float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table6(e)
		stack = 0
		for _, r := range rows {
			stack += r.Shares[8] // FUStack
		}
		stack /= float64(len(rows))
	}
	b.ReportMetric(stack*100, "avg_stack_%")
}

// BenchmarkFig12_ILPUpperBound regenerates Fig. 12 (per-optimization ILP
// upper bound: F&D / +DF / +IF).
func BenchmarkFig12_ILPUpperBound(b *testing.B) {
	e := benchEnv()
	var ipc, spd float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(e)
		ipc, spd = 0, 0
		for _, r := range rows {
			ipc += r.IPC[2]
			spd += r.Speedup[2]
		}
		ipc /= float64(len(rows))
		spd /= float64(len(rows))
	}
	b.ReportMetric(ipc, "avg_IPC")
	b.ReportMetric(spd, "avg_speedup_x")
}

// BenchmarkFig13_HitRatioSweep regenerates Fig. 13 (DB-cache hit ratio
// vs cache size).
func BenchmarkFig13_HitRatioSweep(b *testing.B) {
	e := benchEnv()
	var saturated float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13(e)
		saturated = 0
		for _, r := range rows {
			saturated += r.HitRatios[len(r.HitRatios)-1]
		}
		saturated /= float64(len(rows))
	}
	b.ReportMetric(saturated*100, "saturated_hit_%")
}

// BenchmarkTable7_Finite2KCache regenerates Table 7 (2K-entry DB cache
// vs the upper limit).
func BenchmarkTable7_Finite2KCache(b *testing.B) {
	e := benchEnv()
	var ipc, dspd float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table7(e)
		ipc, dspd = 0, 0
		for _, r := range rows {
			ipc += r.At2KIPC
			dspd += r.SpeedupDelta
		}
		ipc /= float64(len(rows))
		dspd /= float64(len(rows))
	}
	b.ReportMetric(ipc, "avg_2K_IPC")
	b.ReportMetric(dspd*100, "speedup_delta_%")
}

// schedBench runs one scheduling-sweep point set and reports the range.
func schedBench(b *testing.B, modes []core.Mode, report core.Mode) {
	b.Helper()
	e := benchEnv()
	ratios := []float64{0, 0.5, 1.0}
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		pts := experiments.SchedulingSweep(e, modes, []int{4}, ratios)
		lo, hi = 1e18, 0
		for _, p := range pts {
			if p.Mode != report {
				continue
			}
			if p.Speedup < lo {
				lo = p.Speedup
			}
			if p.Speedup > hi {
				hi = p.Speedup
			}
		}
	}
	b.ReportMetric(lo, "min_speedup_x")
	b.ReportMetric(hi, "max_speedup_x")
}

// BenchmarkFig14_Synchronous regenerates Fig. 14(a).
func BenchmarkFig14_Synchronous(b *testing.B) {
	schedBench(b, []core.Mode{core.ModeSynchronous}, core.ModeSynchronous)
}

// BenchmarkFig14_SpatialTemporal regenerates Fig. 14(b).
func BenchmarkFig14_SpatialTemporal(b *testing.B) {
	schedBench(b, []core.Mode{core.ModeSpatialTemporal}, core.ModeSpatialTemporal)
}

// BenchmarkFig15_Utilization regenerates Fig. 15 (PU utilization over
// the dependency sweep).
func BenchmarkFig15_Utilization(b *testing.B) {
	e := benchEnv()
	var util float64
	for i := 0; i < b.N; i++ {
		pts := experiments.SchedulingSweep(e,
			[]core.Mode{core.ModeSpatialTemporal}, []int{4}, []float64{0, 0.5, 1.0})
		util = 0
		for _, p := range pts {
			util += p.Utilization
		}
		util /= float64(len(pts))
	}
	b.ReportMetric(util*100, "avg_util_%")
}

// BenchmarkFig16_Redundancy regenerates Fig. 16(a).
func BenchmarkFig16_Redundancy(b *testing.B) {
	schedBench(b, []core.Mode{core.ModeSTRedundancy}, core.ModeSTRedundancy)
}

// BenchmarkFig16_Hotspot regenerates Fig. 16(b) — the headline result
// (the paper reports 3.53x-16.19x across configurations).
func BenchmarkFig16_Hotspot(b *testing.B) {
	schedBench(b, []core.Mode{core.ModeSTHotspot}, core.ModeSTHotspot)
}

// BenchmarkTable8_BPUvsMTPU_SingleCore regenerates Table 8.
func BenchmarkTable8_BPUvsMTPU_SingleCore(b *testing.B) {
	e := benchEnv()
	var bpu100, mtpu0 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table8(e)
		bpu100 = rows[0].BPUSpeedup
		mtpu0 = rows[len(rows)-1].MTPUSpeedup
	}
	b.ReportMetric(bpu100, "BPU_at_100%_x")
	b.ReportMetric(mtpu0, "MTPU_at_0%_x")
}

// BenchmarkTable9_BPUvsMTPU_QuadCore regenerates Table 9.
func BenchmarkTable9_BPUvsMTPU_QuadCore(b *testing.B) {
	e := benchEnv()
	var bpu0, mtpu0 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table9(e)
		bpu0 = rows[len(rows)-1].BPUSpeedup
		mtpu0 = rows[len(rows)-1].MTPUSpeedup
	}
	b.ReportMetric(bpu0, "BPU_at_0%dep_x")
	b.ReportMetric(mtpu0, "MTPU_at_0%dep_x")
}

// BenchmarkChunking_HotspotAnalysis regenerates the §3.4.2 bytecode-
// loading report (paper: TetherToken transfer loads 8.2%).
func BenchmarkChunking_HotspotAnalysis(b *testing.B) {
	e := benchEnv()
	var tetherLoad float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Chunking(e)
		for _, r := range rows {
			if r.Contract == "TetherUSD" && r.Function == "transfer" {
				tetherLoad = r.LoadFraction
			}
		}
	}
	b.ReportMetric(tetherLoad*100, "tether_transfer_load_%")
}

// BenchmarkAblations regenerates the design-choice ablation table
// (DESIGN.md's ablation index; not a paper artifact, but the paper's
// design arguments quantified one knob at a time).
func BenchmarkAblations(b *testing.B) {
	e := benchEnv()
	var worst float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablations(e)
		worst = 1e18
		for _, r := range rows {
			if r.Speedup < worst {
				worst = r.Speedup
			}
		}
	}
	b.ReportMetric(worst, "worst_knob_speedup_x")
}

// BenchmarkSimulatorThroughput measures raw simulator performance: how
// many transactions per second the full co-designed pipeline (functional
// EVM + timing replay + scheduling) processes on this host.
func BenchmarkSimulatorThroughput(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.TokenBlock(256, 0.3)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		b.Fatal(err)
	}
	acc := core.New(arch.DefaultConfig())
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		b.Fatal(err)
	}
	acc.LearnHotspots(traces, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := acc.Replay(block, traces, receipts, digest, core.ModeSTHotspot); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(block.Transactions)*b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkFunctionalEVM measures the functional interpreter alone.
func BenchmarkFunctionalEVM(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.TokenBlock(256, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.CollectTraces(genesis, block); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(block.Transactions)*b.N)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkCollectTracesAllocs tracks the allocation footprint of the
// golden run (the collector's capacity hints keep per-step appends from
// regrowing).
func BenchmarkCollectTracesAllocs(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.TokenBlock(64, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.CollectTraces(genesis, block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSplit tracks the allocation cost of separating a
// plan's annotated steps into the slices the pipeline consumes.
func BenchmarkPipelineSplit(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.TokenBlock(64, 0.3)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		b.Fatal(err)
	}
	plans := pu.PlainPlans(traces)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			pipeline.Split(p.Steps)
		}
	}
}

// BenchmarkPipelineSplitInto measures the same work with caller-owned
// buffers reused across transactions (zero steady-state allocations).
func BenchmarkPipelineSplitInto(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.TokenBlock(64, 0.3)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		b.Fatal(err)
	}
	plans := pu.PlainPlans(traces)
	var steps []evm.Step
	var ann []pipeline.Annotation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			steps, ann = pipeline.SplitInto(p.Steps, steps, ann)
		}
	}
}

// BenchmarkPipelineExecuteWarm measures the disabled-sink pipeline hot
// path on a warm (all-hit) replay. The allocation report must read
// 0 allocs/op — the zero-overhead guarantee of the instrumentation
// layer (the alloc_test.go tests enforce it).
func BenchmarkPipelineExecuteWarm(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.Batch(gen.Contract("TetherUSD"), 16)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		b.Fatal(err)
	}
	plans := pu.PlainPlans(traces)
	cfg := arch.DefaultConfig()
	pipe := pipeline.New(cfg)
	var mem pipeline.MemModel = pipeline.FlatMem{Cfg: cfg}
	for _, p := range plans { // warm the DB cache and memoize splits
		steps, ann := p.Split()
		pipe.Execute(steps, ann, mem)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			steps, ann := p.Split()
			pipe.Execute(steps, ann, mem)
		}
	}
}

// BenchmarkPURunWarm measures the full PU.Run path (context residency,
// load accounting, pipeline) under the same warm, sink-disabled regime.
func BenchmarkPURunWarm(b *testing.B) {
	gen := workload.NewGenerator(1234, 4096)
	genesis := gen.Genesis()
	block := gen.Batch(gen.Contract("TetherUSD"), 16)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		b.Fatal(err)
	}
	plans := pu.PlainPlans(traces)
	cfg := arch.DefaultConfig()
	unit := pu.New(0, cfg)
	var mem pipeline.MemModel = pipeline.FlatMem{Cfg: cfg}
	for _, p := range plans {
		unit.Run(p, mem)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			unit.Run(p, mem)
		}
	}
}
