// DeFi block: a mixed workload across all eight archetypes — AMM swaps,
// marketplace buys, bridge withdrawals, votes, auction bids and token
// transfers — with a real dependency DAG. Prints the DAG structure and
// the per-PU dispatch timeline of the spatio-temporal scheduler.
//
//	go run ./examples/defi-block
package main

import (
	"fmt"
	"log"
	"sort"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/workload"
)

func main() {
	gen := workload.NewGenerator(99, 2048)
	genesis := gen.Genesis()
	block := gen.MixedBlock(48, 0.4)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mixed block: %d txs, dependent ratio %.2f, critical path %d\n\n",
		len(block.Transactions), block.DAG.DependentRatio(), block.DAG.CriticalPathLen())

	// Show the DAG edges.
	edges := 0
	for j, deps := range block.DAG.Deps {
		for _, d := range deps {
			fmt.Printf("  T%-3d → T%-3d", d, j)
			edges++
			if edges%4 == 0 {
				fmt.Println()
			}
		}
	}
	if edges%4 != 0 {
		fmt.Println()
	}
	fmt.Printf("  (%d dependency edges)\n\n", edges)

	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		log.Fatal(err)
	}
	acc := core.New(arch.DefaultConfig())
	acc.LearnHotspots(traces, 8)

	res, err := acc.Replay(block, traces, receipts, digest, core.ModeSTHotspot)
	if err != nil {
		log.Fatal(err)
	}

	// Per-PU timeline.
	byPU := map[int][]int{}
	starts := map[int]uint64{}
	for i, d := range res.Sched.Dispatches {
		byPU[d.PU] = append(byPU[d.PU], i)
		starts[i] = d.Start
	}
	fmt.Println("spatio-temporal dispatch timeline:")
	for pu := 0; pu < acc.Cfg.NumPUs; pu++ {
		idxs := byPU[pu]
		sort.Slice(idxs, func(a, b int) bool { return starts[idxs[a]] < starts[idxs[b]] })
		fmt.Printf("  PU%d:", pu)
		for _, i := range idxs {
			d := res.Sched.Dispatches[i]
			fmt.Printf(" T%d[%d..%d]", d.Tx, d.Start, d.End)
		}
		fmt.Println()
	}
	fmt.Printf("\nmakespan %d cycles, utilization %.2f, %d redundancy-steered picks\n",
		res.Cycles, res.Utilization, res.Sched.RedundantSteers)

	if err := core.VerifySchedule(genesis, block, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule verified serializable ✔")
}
