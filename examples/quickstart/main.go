// Quickstart: deploy an ERC-20 token, execute transfers through the EVM,
// then run a small block through the MTPU accelerator and compare the
// sequential baseline with the full co-design.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mtpu/internal/arch"
	"mtpu/internal/contracts"
	"mtpu/internal/core"
	"mtpu/internal/evm"
	"mtpu/internal/state"
	"mtpu/internal/types"
	"mtpu/internal/uint256"
	"mtpu/internal/workload"
)

func main() {
	// --- 1. A world state with a deployed token. ---
	st := state.New()
	tether := contracts.NewTether()
	tether.Setup(st)

	alice := types.HexToAddress("0xa11ce00000000000000000000000000000000001")
	bob := types.HexToAddress("0xb0b0000000000000000000000000000000000002")
	funds := uint256.MustFromDecimal("1000000000000000000") // 1 ether for fees
	st.SetBalance(alice, funds)
	st.SetBalance(contracts.TokenOwner, funds)

	// --- 2. Call the contract directly through the EVM. ---
	e := evm.New(evm.BlockContext{Number: 1, GasLimit: 30_000_000}, st)

	mustCall(e, contracts.TokenOwner, tether, "issue", uint64(1_000_000))
	mustCall(e, contracts.TokenOwner, tether, "transfer", alice, uint64(500))
	mustCall(e, alice, tether, "transfer", bob, uint64(123))

	ret := mustCall(e, bob, tether, "balanceOf", bob)
	fmt.Printf("balanceOf(bob) = %s\n", contracts.DecodeWord(ret, 0))
	ret = mustCall(e, bob, tether, "balanceOf", alice)
	fmt.Printf("balanceOf(alice) = %s\n\n", contracts.DecodeWord(ret, 0))

	// --- 3. Run a synthetic block on the simulated MTPU. ---
	gen := workload.NewGenerator(7, 512)
	genesis := gen.Genesis()
	block := gen.TokenBlock(96, 0.25)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		log.Fatal(err)
	}

	acc := core.New(arch.DefaultConfig())
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		log.Fatal(err)
	}
	acc.LearnHotspots(traces, 8)

	seq, err := acc.Replay(block, traces, receipts, digest, core.ModeScalar)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := acc.Replay(block, traces, receipts, digest, core.ModeSTHotspot)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block of %d txs (dependent ratio %.2f):\n",
		len(block.Transactions), block.DAG.DependentRatio())
	fmt.Printf("  scalar single PU:  %8d cycles\n", seq.Cycles)
	fmt.Printf("  full MTPU (4 PUs): %8d cycles  → %.2fx speedup\n",
		fast.Cycles, float64(seq.Cycles)/float64(fast.Cycles))

	if err := core.VerifySchedule(genesis, block, fast); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  parallel schedule verified serializable ✔")
}

func mustCall(e *evm.EVM, from types.Address, c *contracts.Contract, fn string, args ...any) []byte {
	input := contracts.EncodeCall(c.Function(fn), args...)
	ret, _, err := e.Call(from, c.Address, input, 1_000_000, new(uint256.Int))
	if err != nil {
		log.Fatalf("%s.%s: %v", c.Name, fn, err)
	}
	return ret
}
