// Validator node: the deployment story of the paper — a node executes
// consecutive blocks of a chain on the MTPU, learning hotspot contracts
// in each idle block interval so the NEXT block runs faster. Prints
// per-block cycles and the throughput at the prototype's 300 MHz clock,
// and shows the first-block (cold Contract Table) vs steady-state gap.
//
//	go run ./examples/validator-node
package main

import (
	"fmt"
	"log"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/workload"
)

func main() {
	const (
		numBlocks   = 6
		txsPerBlock = 128
	)
	gen := workload.NewGenerator(2024, 8192)
	genesis := gen.Genesis()
	blocks := gen.ChainBlocks(numBlocks, txsPerBlock, 0.3)
	if err := workload.BuildChainDAG(genesis, blocks); err != nil {
		log.Fatal(err)
	}

	acc := core.New(arch.DefaultConfig())
	results, err := acc.ExecuteChain(genesis, blocks, core.ModeSTHotspot, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("validator over %d blocks × %d txs (4 PUs, 300 MHz):\n\n", numBlocks, txsPerBlock)
	fmt.Printf("%-7s %-10s %-12s %-10s %s\n", "block", "cycles", "tx/s", "hit", "skipped")
	for i, r := range results {
		fmt.Printf("#%-6d %-10d %-12.0f %-10.2f %d\n",
			blocks[i].Header.Height, r.Cycles,
			core.TPS(txsPerBlock, r.Cycles, core.PrototypeClockHz),
			r.Pipeline.HitRatio(), r.SkippedInstructions)
	}

	cold := results[0].Cycles
	warm := results[numBlocks-1].Cycles
	fmt.Printf("\nblock #0 runs with a cold Contract Table; once the block-interval\n")
	fmt.Printf("profiling has seen the hotspots, the same workload takes %.0f%% of\n",
		100*float64(warm)/float64(cold))
	fmt.Printf("the cycles (%d → %d).\n", cold, warm)

	// Scalar reference for the end-to-end story.
	scalarAcc := core.New(arch.DefaultConfig())
	scalarResults, err := scalarAcc.ExecuteChain(genesis, blocks, core.ModeScalar, 0)
	if err != nil {
		log.Fatal(err)
	}
	var totalScalar, totalMTPU uint64
	for i := range results {
		totalScalar += scalarResults[i].Cycles
		totalMTPU += results[i].Cycles
	}
	fmt.Printf("\nchain throughput: %.0f tx/s scalar → %.0f tx/s MTPU (%.2fx)\n",
		core.TPS(numBlocks*txsPerBlock, totalScalar, core.PrototypeClockHz),
		core.TPS(numBlocks*txsPerBlock, totalMTPU, core.PrototypeClockHz),
		float64(totalScalar)/float64(totalMTPU))
}
