// Exchange rush: the paper's motivating scenario — a block dominated by
// transfers of one hot token (up to 37% of mainnet transactions call the
// TOP-5 contracts, §2.2.1). Shows how redundancy steering concentrates
// hot-contract transactions on PUs with warm DB caches, and what the
// hotspot Contract Table adds on top.
//
//	go run ./examples/exchange-rush
package main

import (
	"fmt"
	"log"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/metrics"
	"mtpu/internal/workload"
)

func main() {
	gen := workload.NewGenerator(42, 2048)
	genesis := gen.Genesis()

	// 100% ERC-20 block: every transaction hits the same Tether contract.
	block := gen.ERC20Block(160, 1.0)
	if _, err := workload.BuildDAG(genesis, block); err != nil {
		log.Fatal(err)
	}
	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		log.Fatal(err)
	}

	acc := core.New(arch.DefaultConfig())
	hot := acc.LearnHotspots(traces, 8)
	fmt.Printf("hotspot contracts learned: %d (Contract Table entries: %d)\n\n",
		len(hot), acc.Table.Len())

	t := metrics.NewTable("160 Tether transfers, 4 PUs",
		"mode", "cycles", "speedup", "DB-cache hit", "redundant steers")
	var base uint64
	for _, m := range []core.Mode{
		core.ModeScalar, core.ModeSynchronous,
		core.ModeSpatialTemporal, core.ModeSTRedundancy, core.ModeSTHotspot,
	} {
		res, err := acc.Replay(block, traces, receipts, digest, m)
		if err != nil {
			log.Fatal(err)
		}
		if m == core.ModeScalar {
			base = res.Cycles
		}
		t.Row(m.String(), res.Cycles, metrics.X(float64(base)/float64(res.Cycles)),
			res.Pipeline.HitRatio(), res.Sched.RedundantSteers)
	}
	fmt.Println(t.String())

	fmt.Println("every transaction calls the same contract, so once each PU has")
	fmt.Println("executed one transfer, all subsequent ones reuse its DB-cache")
	fmt.Println("lines and loaded bytecode — the time-dimension redundancy")
	fmt.Println("optimization of §3.3.5.")
}
