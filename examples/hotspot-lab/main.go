// Hotspot lab: a walkthrough of the §3.4 offline optimization. Profiles
// Tether transfer, prints the chunk boundaries the analyzer found, the
// instructions eliminated by constant backtracking, the prefetchable
// storage reads, and the bytecode-loading reduction — then shows the
// cycle difference on a single PU.
//
//	go run ./examples/hotspot-lab
package main

import (
	"fmt"
	"log"

	"mtpu/internal/arch"
	"mtpu/internal/arch/pipeline"
	"mtpu/internal/arch/pu"
	"mtpu/internal/core"
	"mtpu/internal/hotspot"
	"mtpu/internal/workload"
)

func main() {
	gen := workload.NewGenerator(5, 512)
	genesis := gen.Genesis()
	tether := gen.Contract("TetherUSD")

	block := gen.Batch(tether, 12)
	traces, _, _, err := core.CollectTraces(genesis, block)
	if err != nil {
		log.Fatal(err)
	}

	table := hotspot.NewContractTable()
	for _, tr := range traces {
		table.Learn(tr)
	}
	fmt.Printf("Contract Table: %d (contract, function) entries\n\n", table.Len())

	// Pick a transfer trace and inspect its optimization plan.
	var transfer = tether.Function("transfer")
	for _, tr := range traces {
		if !tr.HasSelector || tr.Selector != transfer.Selector {
			continue
		}
		info := table.Lookup(tr.Contract, tr.Selector)
		plan := table.Plan(tr)

		fmt.Printf("TetherUSD.transfer — %d executed instructions\n", len(tr.Steps))
		fmt.Printf("  Compare+Check chunks pre-executed: first %d steps\n", info.PreExecLen)
		fmt.Printf("  eliminated by constant backtracking: %d more\n",
			plan.SkippedInstructions-info.PreExecLen)
		fmt.Printf("  issued at execution time: %d (%.1f%% of original)\n",
			len(plan.Steps), 100*float64(len(plan.Steps))/float64(len(tr.Steps)))
		fmt.Printf("  bytecode loaded: %.1f%% of %d bytes (chunked loading)\n",
			100*info.LoadFractionOf(tr.Contract), len(tether.Code))

		pref, slTotal := 0, 0
		for _, s := range plan.Steps {
			if s.Step.Op.String() == "SLOAD" {
				slTotal++
				if s.Annotation.Prefetched {
					pref++
				}
			}
		}
		fmt.Printf("  prefetched SLOADs: %d of %d\n\n", pref, slTotal)

		// Single-PU cycle comparison, warm caches.
		cfg := arch.DefaultConfig()
		run := func(p *pu.Plan) uint64 {
			unit := pu.New(0, cfg)
			mem := pipeline.FlatMem{Cfg: cfg}
			unit.Run(p, mem) // warm
			return unit.Run(p, mem).Total
		}
		plain := run(pu.PlainPlan(tr))
		opt := run(plan)
		fmt.Printf("  warm PU cycles: %d plain → %d optimized (%.2fx)\n",
			plain, opt, float64(plain)/float64(opt))
		return
	}
	log.Fatal("no transfer transaction in batch")
}
