GO ?= go
FUZZTIME ?= 5s

.PHONY: all build test race vet fuzz-smoke bench stats-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the assembler/disassembler round-trip targets.
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzDisassemble -fuzztime $(FUZZTIME)

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Run a small instrumented workload, write the counter report, and
# validate it against the JSON schema (strict decode + invariants).
stats-smoke:
	$(GO) run ./cmd/mtpu-bench -stats -json bench_stats.json fig13
	$(GO) run ./cmd/mtpu-bench -validate bench_stats.json

ci: vet build race fuzz-smoke stats-smoke
