GO ?= go
FUZZTIME ?= 5s

.PHONY: all build test race vet fuzz-smoke bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the assembler/disassembler round-trip targets.
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzDisassemble -fuzztime $(FUZZTIME)

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

ci: vet build race fuzz-smoke
