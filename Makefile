GO ?= go
FUZZTIME ?= 5s

.PHONY: all build test race vet fuzz-smoke diff-smoke bench stats-smoke stm-sweep bse-sweep perf report-smoke serve-smoke scenario-smoke validate-artifacts ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the decoder and data-structure targets: the
# assembler/disassembler round trips, the RLP and consensus-type
# decoders, and the multi-version memory against its sequential oracle.
fuzz-smoke:
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzDisassemble -fuzztime $(FUZZTIME)
	$(GO) test ./internal/rlp -run '^$$' -fuzz FuzzDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/types -run '^$$' -fuzz FuzzDecodeTransactionRLP -fuzztime $(FUZZTIME)
	$(GO) test ./internal/types -run '^$$' -fuzz FuzzDecodeBlockRLP -fuzztime $(FUZZTIME)
	$(GO) test ./internal/mvstate -run '^$$' -fuzz FuzzMVMemory -fuzztime $(FUZZTIME)
	$(GO) test ./internal/arch -run '^$$' -fuzz FuzzSymbolTable -fuzztime $(FUZZTIME)
	$(GO) test ./internal/difftest -run '^$$' -fuzz FuzzDiffEngines -fuzztime $(FUZZTIME)

# Cross-engine differential sweep under the race detector: every spec in
# the grid (dependence ratios, PU counts, window/cache geometry, and the
# adversarial corners — pure chains, hotspot contention, duplicate
# addresses) runs on all registered engines against the sequential
# oracle. Failures are delta-shrunk to minimal reproducers.
diff-smoke:
	$(GO) test -race ./internal/difftest

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Run a small instrumented workload, write the counter report, and
# validate it against the JSON schema (strict decode + invariants).
stats-smoke:
	$(GO) run ./cmd/mtpu-bench -stats -json bench_stats.json fig13
	$(GO) run ./cmd/mtpu-bench -validate bench_stats.json

# Run the optimistic-baseline sweep (Block-STM vs DAG-driven
# scheduling), write the JSON report, and validate the STM invariants.
stm-sweep:
	$(GO) run ./cmd/mtpu-bench -parallel 0 -json bench_stm.json stm
	$(GO) run ./cmd/mtpu-bench -validate bench_stm.json

# Run the pre-scheduled batch-execute sweep, write the JSON report, and
# validate the BSE invariants.
bse-sweep:
	$(GO) run ./cmd/mtpu-bench -parallel 0 -json bench_bse.json bse
	$(GO) run ./cmd/mtpu-bench -validate bench_bse.json

# Measure simulator hot-loop throughput (host tx/s), validate the fresh
# artifact, and fail if any point regresses below the committed
# BENCH_perf.json baseline by more than the ratio. The numbers are
# host-dependent and the shared CI machines are noisy, so the gate is
# deliberately loose — it catches order-of-magnitude regressions (a lost
# fast path), not percent-level drift. To adopt new numbers as the
# baseline: copy bench_perf.json over BENCH_perf.json and commit.
perf:
	$(GO) run ./cmd/mtpu-bench -json bench_perf.json -perf-baseline BENCH_perf.json -perf-min-ratio 0.4 perf
	$(GO) run ./cmd/mtpu-bench -validate bench_perf.json

# Exercise the run-ledger/regression loop end to end: two quick perf
# passes append JSONL ledger entries, then mtpu-report diffs them and
# must exit zero (the threshold is loose — back-to-back passes on one
# machine only differ by noise; a 5x collapse means the ledger or the
# comparison broke).
report-smoke:
	rm -f bench_ledger_a.jsonl bench_ledger_b.jsonl
	$(GO) run ./cmd/mtpu-bench -perf-wall 40ms -ledger bench_ledger_a.jsonl perf
	$(GO) run ./cmd/mtpu-bench -perf-wall 40ms -ledger bench_ledger_b.jsonl perf
	$(GO) run ./cmd/mtpu-report -min-ratio 0.2 bench_ledger_a.jsonl bench_ledger_b.jsonl

# Exercise the block-stream service end to end: mtpu-serve replays a
# 500-block in-process stream through every registered engine with
# shadow validation sampling, appends the service report to the run
# ledger, and exits non-zero on any shadow divergence or telemetry
# invariant violation (blocks lost/duplicated, queues not drained).
# The second pass is the chained digest-continuity gate: a shorter
# stream under the race detector with -verify-chain, which recomputes
# the head-state digest after every fold and halts on any mismatch
# between the priced pre-fold digest and the folded head.
serve-smoke:
	rm -f bench_serve.jsonl
	$(GO) run ./cmd/mtpu-serve -source blocks=500,txs=32,dep=0.3,seed=1 \
		-mode all -shadow-sample 0.1 -ledger bench_serve.jsonl
	$(GO) run -race ./cmd/mtpu-serve -source blocks=64,txs=24,dep=0.5,seed=2 \
		-mode all -shadow-sample 1 -verify-chain -ledger bench_serve.jsonl

# Drive every mainnet-shaped Zipfian scenario through the block-stream
# service. Per scenario: a 500-block chained stream with digest-
# continuity verification and sampled shadow validation on the full
# engine, then a short race-enabled pass on every registered engine with
# every block shadow-validated. Service reports accumulate in the
# bench_scenarios.jsonl run ledger.
scenario-smoke:
	rm -f bench_scenarios.jsonl
	for s in erc20-mix dex nft-mint airdrop oracle; do \
		$(GO) run ./cmd/mtpu-serve -source scenario=$$s,blocks=500,txs=16,skew=1.2,seed=7 \
			-shadow-sample 0.05 -verify-chain -ledger bench_scenarios.jsonl || exit 1; \
		$(GO) run -race ./cmd/mtpu-serve -source scenario=$$s,blocks=24,txs=12,skew=1.2,seed=8 \
			-mode all -shadow-sample 1 -verify-chain -ledger bench_scenarios.jsonl || exit 1; \
	done

# Strictly validate the checked-in sweep artifacts: catches a schema bump
# (or a new sweep such as bse or perf) that was not regenerated into the
# files.
validate-artifacts:
	$(GO) run ./cmd/mtpu-bench -validate BENCH_sweeps.json
	$(GO) run ./cmd/mtpu-bench -validate BENCH_perf.json

ci: vet build race diff-smoke fuzz-smoke stats-smoke stm-sweep bse-sweep perf report-smoke serve-smoke scenario-smoke validate-artifacts
