package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtpu/internal/telemetry"
)

// writeLedger appends one entry with the given workload values, keyed
// perf/w0, perf/w1, ...
func writeLedger(t *testing.T, path string, values ...float64) {
	t.Helper()
	e := telemetry.NewEntry("test", nil)
	for i, v := range values {
		e.Workloads = append(e.Workloads, telemetry.Workload{
			Key: "perf/w" + string(rune('0'+i)), Value: v, Unit: "tx/s",
		})
	}
	if err := telemetry.Append(path, e); err != nil {
		t.Fatal(err)
	}
}

func runReport(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestIdenticalArtifactsExitZero is the acceptance baseline: diffing an
// artifact against itself never regresses.
func TestIdenticalArtifactsExitZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.jsonl")
	writeLedger(t, path, 1000, 2000)
	code, stdout, stderr := runReport(path, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "no regression") {
		t.Errorf("stdout missing pass message:\n%s", stdout)
	}
}

// TestInjectedRegressionExitsNonzero doctors a copy of the baseline
// with a 25% throughput drop — past the default 0.8 threshold — and
// requires exit 1 plus the per-workload table naming the culprit.
func TestInjectedRegressionExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "old.jsonl")
	cand := filepath.Join(dir, "new.jsonl")
	writeLedger(t, base, 1000, 2000)
	writeLedger(t, cand, 750, 2000) // perf/w0 dropped to 0.75x

	code, stdout, stderr := runReport(base, cand)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "perf/w0") || !strings.Contains(stdout, "REGRESSED") {
		t.Errorf("table does not flag perf/w0:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 workload(s) regressed") {
		t.Errorf("stderr does not count regressions: %s", stderr)
	}

	// The same drop passes under a looser threshold.
	if code, _, _ := runReport("-min-ratio", "0.5", base, cand); code != 0 {
		t.Errorf("0.75x flagged under a 0.5 threshold (exit %d)", code)
	}
}

// TestBenchReportInput aligns a checked-in-format mtpu-bench report
// against a ledger: the perf/<name> key scheme must match across the
// two formats.
func TestBenchReportInput(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	doc := `{"schema": 6, "experiments": [{"name": "perf"}],
		"perf": [{"name": "w0", "tx_per_sec": 1000}]}`
	if err := os.WriteFile(bench, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	ledger := filepath.Join(dir, "run.jsonl")
	writeLedger(t, ledger, 600) // 0.6x of the bench baseline

	code, stdout, _ := runReport(bench, ledger)
	if code != 1 {
		t.Fatalf("cross-format regression missed (exit %d):\n%s", code, stdout)
	}
}

// TestJSONOutput checks the machine-readable path round-trips.
func TestJSONOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.jsonl")
	writeLedger(t, path, 1000)
	code, stdout, stderr := runReport("-json", path, path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	var cmp telemetry.Comparison
	dec := json.NewDecoder(strings.NewReader(stdout))
	if err := dec.Decode(&cmp); err != nil {
		t.Fatalf("-json output is not a Comparison: %v", err)
	}
	if len(cmp.Rows) != 1 || cmp.Rows[0].Ratio != 1 {
		t.Errorf("comparison = %+v", cmp)
	}
}

// TestUsageErrorsExitTwo covers the error-status contract.
func TestUsageErrorsExitTwo(t *testing.T) {
	if code, _, _ := runReport(); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	one := filepath.Join(t.TempDir(), "one.jsonl")
	writeLedger(t, one, 1)
	if code, _, _ := runReport(one); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code, _, stderr := runReport(one, filepath.Join(t.TempDir(), "missing.jsonl")); code != 2 {
		t.Errorf("missing file: exit %d, want 2 (stderr %s)", code, stderr)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := telemetry.Append(empty, telemetry.NewEntry("test", nil)); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := runReport(empty, empty); code != 2 {
		t.Errorf("workload-free ledger: exit %d, want 2 (stderr %s)", code, stderr)
	}
}
