// Command mtpu-report compares measurement artifacts — JSONL run
// ledgers (mtpu-run/mtpu-bench -ledger) and mtpu-bench -json reports —
// aligning them by workload key and printing a per-workload regression
// table with min/max and the newest/baseline ratio.
//
// Usage:
//
//	mtpu-report [-min-ratio R] [-json] BASELINE FILE... NEWEST
//
// The first file is the baseline and the last the candidate; middle
// files add columns but never gate. Exit status: 0 when no aligned
// workload's ratio falls below -min-ratio, 1 on regression, 2 on
// usage or load errors. This is the same comparison code path `make
// perf` fails through, so the gate and the tool always agree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mtpu/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process edges injected, so tests drive the
// exact code path (flags, loading, comparison, exit status) users do.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtpu-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	minRatio := fs.Float64("min-ratio", 0.8, "minimum newest/baseline throughput ratio before a workload counts as regressed")
	jsonOut := fs.Bool("json", false, "emit the comparison as JSON instead of a table")
	version := fs.Bool("version", false, "print build information and exit")
	fs.Usage = func() { usage(stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, telemetry.Build())
		return 0
	}
	if fs.NArg() < 2 {
		usage(stderr)
		return 2
	}

	artifacts := make([]*telemetry.Artifact, 0, fs.NArg())
	for _, path := range fs.Args() {
		a, err := telemetry.LoadArtifact(path)
		if err != nil {
			fmt.Fprintf(stderr, "mtpu-report: %v\n", err)
			return 2
		}
		if len(a.Workloads) == 0 {
			fmt.Fprintf(stderr, "mtpu-report: %s (%s, %d entries) carries no workloads\n", path, a.Kind, a.Entries)
			return 2
		}
		artifacts = append(artifacts, a)
	}

	cmp := telemetry.Compare(artifacts, *minRatio)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			fmt.Fprintf(stderr, "mtpu-report: %v\n", err)
			return 2
		}
	} else {
		fmt.Fprint(stdout, cmp.Render())
	}

	if regs := cmp.Regressions(); len(regs) > 0 {
		fmt.Fprintf(stderr, "mtpu-report: %d workload(s) regressed below %.2fx\n", len(regs), *minRatio)
		return 1
	}
	fmt.Fprintf(stdout, "no regression: every aligned workload >= %.2fx the baseline\n", *minRatio)
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: mtpu-report [-min-ratio R] [-json] BASELINE [FILE...] NEWEST
Compares two or more measurement artifacts by workload key. Accepted
formats (auto-detected per JSON document):
  - JSONL run ledgers written by mtpu-run/mtpu-bench -ledger
  - mtpu-bench -json reports (perf rows become perf/<name> workloads)
The ratio column is newest/baseline; a workload regresses when its
ratio drops below -min-ratio (default 0.8). Workloads present on only
one side are shown as "unaligned" and never gate.
flags:
  -min-ratio R  regression threshold (newest/baseline)
  -json         machine-readable comparison output
  -version      print build information and exit`)
}
