// Command evm-asm assembles EVM mnemonic text into bytecode and
// disassembles bytecode back into listings. It can also dump the
// built-in workload contracts.
//
// Usage:
//
//	evm-asm file.asm          assemble to hex on stdout
//	evm-asm -d 6080604052...  disassemble a hex string
//	evm-asm -contract Name    disassemble a built-in contract
//	evm-asm -list             list built-in contracts with sizes
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"mtpu/internal/asm"
	"mtpu/internal/contracts"
	"mtpu/internal/evm"
)

func main() {
	disasm := flag.String("d", "", "hex bytecode to disassemble")
	contract := flag.String("contract", "", "built-in contract to disassemble")
	list := flag.Bool("list", false, "list built-in contracts")
	stats := flag.Bool("stats", false, "print functional-unit statistics instead of a listing")
	flag.Parse()

	switch {
	case *list:
		for _, c := range contracts.All() {
			fmt.Printf("%-22s %s  %5d bytes  %d functions\n",
				c.Name, c.Address, len(c.Code), len(c.Functions))
		}

	case *contract != "":
		for _, c := range contracts.All() {
			if strings.EqualFold(c.Name, *contract) {
				emit(c.Code, *stats)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "evm-asm: unknown contract %q (try -list)\n", *contract)
		os.Exit(1)

	case *disasm != "":
		code, err := hex.DecodeString(strings.TrimPrefix(*disasm, "0x"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "evm-asm: bad hex: %v\n", err)
			os.Exit(1)
		}
		emit(code, *stats)

	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "evm-asm: %v\n", err)
			os.Exit(1)
		}
		code, err := asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "evm-asm: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(hex.EncodeToString(code))

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(code []byte, stats bool) {
	if !stats {
		fmt.Print(asm.Format(code))
		return
	}
	counts := asm.Stats(code)
	total := 0
	for _, n := range counts {
		total += n
	}
	for _, u := range asm.SortedUnits(counts) {
		fmt.Printf("%-18s %5d  %5.1f%%\n", evm.FuncUnit(u).String(), counts[u],
			100*float64(counts[u])/float64(total))
	}
	fmt.Printf("%-18s %5d\n", "total", total)
}
