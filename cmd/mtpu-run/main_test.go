package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// runMain invokes realMain with a fresh global flag set, restoring the
// process state afterwards (realMain registers its flags on
// flag.CommandLine at call time).
func runMain(t *testing.T, args ...string) int {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() { os.Args, flag.CommandLine = oldArgs, oldFlags }()
	flag.CommandLine = flag.NewFlagSet("mtpu-run", flag.ExitOnError)
	os.Args = append([]string{"mtpu-run"}, args...)
	return realMain()
}

// TestUnwritableLedgerExitsNonzero: a run whose ledger entry cannot be
// written must exit non-zero — and because realMain returns instead of
// calling os.Exit, the deferred profile/telemetry shutdowns still ran.
func TestUnwritableLedgerExitsNonzero(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := runMain(t, "-txs", "8", "-mode", "scalar",
		"-ledger", filepath.Join(blocker, "ledger.jsonl"))
	if code == 0 {
		t.Fatal("unwritable ledger path exited 0")
	}
}

func TestRunWithLedgerExitsZero(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "run.jsonl")
	if code := runMain(t, "-txs", "8", "-mode", "scalar", "-ledger", ledger); code != 0 {
		t.Fatalf("run exited %d", code)
	}
	if _, err := os.Stat(ledger); err != nil {
		t.Fatalf("ledger not written: %v", err)
	}
}

func TestVersionExitsZero(t *testing.T) {
	if code := runMain(t, "-version"); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
}
