package main

import (
	"fmt"
	"os"
	"path/filepath"

	"mtpu/internal/core"
	"mtpu/internal/difftest"
)

// runDiff replays a saved differential-test spec across the selected
// engines. Divergences are shrunk to minimal reproducers and written
// next to the input file; the exit code is the failure count (capped by
// the shell's 8 bits, but any non-zero means red).
func runDiff(path string, modes []core.Mode) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-run: %v\n", err)
		return 1
	}
	spec, err := difftest.ParseSpecFile(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-run: %s: %v\n", path, err)
		return 1
	}

	h := &difftest.Harness{Modes: modes}
	fmt.Printf("diff %s\nspec: %s\n", path, spec)
	fails, err := h.Run(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-run: spec unrunnable: %v\n", err)
		return 1
	}
	if len(fails) == 0 {
		fmt.Printf("all %d engines agree with the sequential oracle\n", len(h.Modes))
		return 0
	}
	for _, f := range fails {
		fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", f.Engine, f.Err)
		out, err := h.WriteReproducer(filepath.Dir(path), f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-run: writing reproducer: %v\n", err)
			continue
		}
		fmt.Fprintf(os.Stderr, "     shrunk reproducer: %s\n", out)
	}
	return len(fails)
}
