// Command mtpu-run generates a synthetic block and executes it on the
// simulated MTPU under every registered execution engine, printing
// receipts and the cycle/speedup comparison — a one-command tour of the
// system.
//
// Usage:
//
//	mtpu-run [-txs N] [-dep R] [-pus N] [-seed N] [-mode LIST] [-v]
//	         [-dump F] [-load F] [-stats] [-trace-out F] [-verify-dag]
//	         [-ledger F] [-telemetry-addr A] [-cpuprofile F] [-memprofile F]
//	         [-blockprofile F] [-mutexprofile F]
//	mtpu-run -diff FILE [-mode LIST]
//	mtpu-run -version
//
// The -diff form replays a saved differential-test spec (a corpus file
// written by the harness in internal/difftest, or a hand-written one)
// across the selected engines, shrinking and reporting any divergence.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/metrics"
	"mtpu/internal/obs"
	"mtpu/internal/profiling"
	"mtpu/internal/telemetry"
	"mtpu/internal/types"
	"mtpu/internal/workload"
)

// parseModes resolves the -mode flag against the engine registry: "all"
// (the default) enumerates every registered engine in registration
// order; otherwise each comma-separated name must parse.
func parseModes(spec string) ([]core.Mode, error) {
	if spec == "all" {
		return engine.Modes(), nil
	}
	var modes []core.Mode
	for _, name := range strings.Split(spec, ",") {
		m, err := engine.Parse(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}

func main() {
	os.Exit(realMain())
}

// realMain is main with an exit code instead of os.Exit, so the
// deferred profile flush and telemetry-server shutdown run on every
// exit path — log.Fatalf used to skip them, silently truncating
// profile artifacts.
func realMain() int {
	txs := flag.Int("txs", 128, "transactions per block")
	dep := flag.Float64("dep", 0.3, "target dependent-transaction ratio (0..1)")
	pus := flag.Int("pus", 4, "number of processing units")
	seed := flag.Int64("seed", 1, "workload seed")
	mode := flag.String("mode", "all",
		fmt.Sprintf("comma-separated engine names, or \"all\" (registered: %s)",
			strings.Join(engine.Names(), ", ")))
	verbose := flag.Bool("v", false, "print per-transaction receipts")
	dump := flag.String("dump", "", "write the generated block (RLP, with DAG) to this file")
	load := flag.String("load", "", "execute a block previously written with -dump instead of generating one")
	stats := flag.Bool("stats", false, "print per-mode cycle accounting, DB-cache and scheduler counters")
	traceOut := flag.String("trace-out", "", "write the per-mode execution timelines as Chrome trace-event JSON (Perfetto / chrome://tracing)")
	verifyDAG := flag.Bool("verify-dag", false, "cross-check the consensus DAG against the conflicts a sequential replay observes")
	diff := flag.String("diff", "", "replay a saved differential-test spec (JSON) across the selected engines and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof goroutine-blocking profile at exit to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
	ledgerPath := flag.String("ledger", "", "append a JSONL run-ledger entry (env fingerprint + per-mode throughput + telemetry) to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live metrics (Prometheus text, expvar, pprof) on this address while running")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build())
		return 0
	}

	modes, err := parseModes(*mode)
	if err != nil {
		log.Printf("mtpu-run: %v", err)
		return 1
	}

	profiles := profiling.Profiles{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	stopProfiles, err := profiling.StartAll(profiles)
	if err != nil {
		log.Printf("mtpu-run: %v", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Printf("mtpu-run: %v", err)
		}
	}()

	if *diff != "" {
		return runDiff(*diff, modes)
	}

	gen := workload.NewGenerator(*seed, 4*(*txs)+64)
	genesis := gen.Genesis()

	var block *types.Block
	if *load != "" {
		raw, err := os.ReadFile(*load)
		if err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		block, err = types.DecodeBlockRLP(raw)
		if err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		fmt.Printf("loaded block %s from %s\n", block.Hash(), *load)
	} else {
		block = gen.TokenBlock(*txs, *dep)
		if _, err := workload.BuildDAG(genesis, block); err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
	}
	if *dump != "" {
		if err := os.WriteFile(*dump, block.EncodeRLP(), 0o644); err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		fmt.Printf("block %s written to %s (%d bytes)\n",
			block.Hash(), *dump, len(block.EncodeRLP()))
	}

	if *verifyDAG {
		if err := workload.VerifyDAG(genesis, block); err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		fmt.Println("DAG verified: edges match sequential-replay conflicts exactly")
	}

	traces, receipts, digest, err := core.CollectTraces(genesis, block)
	if err != nil {
		log.Printf("mtpu-run: %v", err)
		return 1
	}

	fmt.Printf("block: %d transactions, dependent ratio %.2f, critical path %d\n",
		len(block.Transactions), block.DAG.DependentRatio(), block.DAG.CriticalPathLen())
	if *stats {
		fp := genesis.Footprint()
		fmt.Printf("genesis state: %d accounts, %d storage slots, %d code bytes\n",
			fp.Accounts, fp.StorageSlots, fp.CodeBytes)
	}
	fmt.Printf("state digest: %s\n", digest)
	var gas uint64
	for _, r := range receipts {
		gas += r.GasUsed
	}
	fmt.Printf("gas used: %d\n\n", gas)

	if *verbose {
		for i, r := range receipts {
			tx := block.Transactions[i]
			status := "ok"
			if r.Status != types.ReceiptSuccess {
				status = "REVERTED"
			}
			fmt.Printf("  tx %3d  %s -> %s  gas=%6d  %s\n",
				i, tx.From, tx.To, r.GasUsed, status)
		}
		fmt.Println()
	}

	cfg := arch.DefaultConfig()
	cfg.NumPUs = *pus
	acc := core.New(cfg)
	acc.LearnHotspots(traces, 8)

	var tel *telemetry.Metrics
	if *ledgerPath != "" || *telemetryAddr != "" {
		tel = telemetry.New()
	}
	if *telemetryAddr != "" {
		addr, stopServer, err := tel.Serve(*telemetryAddr)
		if err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		fmt.Printf("telemetry: serving /metrics, /snapshot, /debug/vars, /debug/pprof on http://%s\n", addr)
		defer func() {
			if err := stopServer(); err != nil {
				log.Printf("mtpu-run: telemetry server: %v", err)
			}
		}()
	}

	instrument := *stats || *traceOut != ""
	t := metrics.NewTable(fmt.Sprintf("execution modes (%d PUs)", *pus),
		"mode", "cycles", "speedup", "IPC", "hit", "util")
	var baseline uint64 // first listed mode anchors the speedup column
	var reports []*obs.Report
	var workloads []telemetry.Workload
	for _, m := range modes {
		opts := core.ReplayOpts{Genesis: genesis, Tel: tel}
		if instrument {
			opts.Obs = obs.NewCollector()
		}
		wallStart := time.Now()
		res, err := acc.ReplayWith(block, traces, receipts, digest, m, opts)
		wall := time.Since(wallStart)
		if err != nil {
			log.Printf("mtpu-run: %v: %v", m, err)
			return 1
		}
		if tel != nil && wall > 0 {
			workloads = append(workloads, telemetry.Workload{
				Key:   fmt.Sprintf("run/%s/txs%d-dep%.2f-pus%d", m, len(block.Transactions), *dep, *pus),
				Value: float64(len(block.Transactions)) / wall.Seconds(),
				Unit:  "tx/s",
			})
		}
		if baseline == 0 {
			baseline = res.Cycles
		}
		// Each engine declares how its schedule is checked: DAG-order
		// engines replay the dispatch timeline against the consensus DAG;
		// internal-digest engines (optimistic execution) asserted state
		// identity inside Run, and every runtime-detected conflict must lie
		// inside the DAG's transitive closure.
		if err := core.VerifyResult(genesis, block, res); err != nil {
			log.Printf("mtpu-run: serializability check failed: %v", err)
			return 1
		}
		t.Row(m.String(), res.Cycles, metrics.X(float64(baseline)/float64(res.Cycles)),
			res.Pipeline.IPC(), res.Pipeline.HitRatio(), res.Utilization)
		if instrument {
			reports = append(reports, res.Obs)
		}
	}
	fmt.Println(t.String())
	fmt.Println("all modes verified serializable (identical state digests)")

	if *stats {
		for _, r := range reports {
			fmt.Printf("\n=== %s ===\n%s", r.Mode, r.Render())
		}
	}
	if *traceOut != "" {
		procs := make([]obs.Process, len(reports))
		for i, r := range reports {
			procs[i] = obs.Process{Name: r.Mode, Spans: r.Spans}
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		if err := obs.WriteChromeTrace(f, procs); err != nil {
			f.Close()
			log.Printf("mtpu-run: writing trace: %v", err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		fmt.Printf("\ntimeline written to %s — open in https://ui.perfetto.dev or chrome://tracing (one process per mode, one thread per PU)\n", *traceOut)
	}

	if *ledgerPath != "" {
		entry := telemetry.NewEntry("mtpu-run", os.Args[1:])
		entry.ConfigHash = telemetry.ConfigHash(cfg)
		entry.Profiles = profiles.Paths()
		entry.Workloads = workloads
		snap := tel.Snapshot()
		entry.Telemetry = &snap
		if err := telemetry.Append(*ledgerPath, entry); err != nil {
			log.Printf("mtpu-run: %v", err)
			return 1
		}
		fmt.Printf("run ledger appended to %s (%d workloads)\n", *ledgerPath, len(workloads))
	}
	return 0
}
