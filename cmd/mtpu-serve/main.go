// Command mtpu-serve runs the block-stream execution service: a staged
// cross-block pipeline (ingest → prefetch/decode → execute → commit)
// that keeps the simulated MTPU busy on block N while block N+1 is
// being decoded and block N−1 is being committed. Blocks arrive over
// HTTP (TCP and/or a unix socket) or from an in-process generated
// stream, and an optional shadow validator re-executes a sampled
// fraction of committed blocks through the sequential oracle.
//
// Usage:
//
//	mtpu-serve -source SPEC [-mode LIST] [-pus N] [-queue N]
//	           [-shadow-sample R] [-shadow-log] [-verify-chain]
//	           [-hotspot-top N] [-ledger F] [-telemetry-addr A]
//	           [-cpuprofile F] [-memprofile F] [-blockprofile F]
//	           [-mutexprofile F]
//	mtpu-serve -addr :8573 [-unix PATH] [-genesis SPEC] [-mode NAME] ...
//	mtpu-serve -version
//
// SPEC is a stream spec — `blocks=500,txs=64,dep=0.3,seed=1` — or a
// mainnet-shaped scenario spec — `scenario=dex,blocks=500,txs=64,
// skew=1.2,seed=1` — or the equivalent JSON of either. The -source form
// replays the generated stream in-process, drains, prints the service
// report and exits; with
// `-mode all` it runs the stream through every registered engine in
// turn. The -addr/-unix form serves until SIGINT/SIGTERM, then drains
// gracefully; its genesis state derives from -genesis so producers
// using the same spec seed generate compatible blocks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mtpu/internal/arch"
	"mtpu/internal/engine"
	"mtpu/internal/profiling"
	"mtpu/internal/stream"
	"mtpu/internal/telemetry"
	"mtpu/internal/workload"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain is main with an exit code instead of os.Exit, so deferred
// profile flushes and server shutdowns run on every exit path.
func realMain(args []string) int {
	fs := flag.NewFlagSet("mtpu-serve", flag.ExitOnError)
	mode := fs.String("mode", "spatial-temporal+redundancy+hotspot",
		fmt.Sprintf("engine to execute blocks on; with -source, a comma list or \"all\" (registered: %s)",
			strings.Join(engine.Names(), ", ")))
	pus := fs.Int("pus", 4, "number of processing units")
	queue := fs.Int("queue", stream.DefaultQueueDepth, "bounded depth of each pipeline stage queue")
	shadowSample := fs.Float64("shadow-sample", 0.1, "fraction of committed blocks re-executed through the sequential oracle (0 disables, 1 checks every block)")
	shadowLog := fs.Bool("shadow-log", false, "log shadow-validation mismatches and keep serving instead of halting")
	verifyChain := fs.Bool("verify-chain", false, "recompute the head-state digest after every fold and halt on digest-continuity mismatch (full-state hashing per block; CI/debugging)")
	hotspotTop := fs.Int("hotspot-top", 8, "hot contracts learned into the Contract Table after each block (0 disables)")
	source := fs.String("source", "", fmt.Sprintf("replay a generated block stream in-process (stream spec, e.g. blocks=500,txs=64,dep=0.3,seed=1, or scenario spec, e.g. scenario=dex,blocks=500,txs=64,skew=1.2,seed=1; scenarios: %s)",
		strings.Join(workload.Scenarios, ", ")))
	addr := fs.String("addr", "", "serve block ingest over HTTP on this TCP address")
	unixPath := fs.String("unix", "", "serve block ingest on this unix socket path")
	genesisSpec := fs.String("genesis", "blocks=1,txs=64,seed=1", "stream or scenario spec the server's genesis state derives from (network mode; seed/txs/accounts size the account pool)")
	ledgerPath := fs.String("ledger", "", "append a JSONL run-ledger entry (env fingerprint + per-engine throughput + telemetry) to this file")
	telemetryAddr := fs.String("telemetry-addr", "", "serve live metrics (Prometheus text, expvar, pprof) on this address while running")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	blockProfile := fs.String("blockprofile", "", "write a pprof goroutine-blocking profile at exit to this file")
	mutexProfile := fs.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
	version := fs.Bool("version", false, "print build information and exit")
	fs.Parse(args)
	if *version {
		fmt.Println(telemetry.Build())
		return 0
	}
	if *source == "" && *addr == "" && *unixPath == "" {
		fmt.Fprintln(os.Stderr, "mtpu-serve: nothing to do: pass -source SPEC and/or -addr/-unix listeners")
		return 2
	}

	modes, err := parseModes(*mode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
		return 2
	}
	if len(modes) > 1 && (*addr != "" || *unixPath != "") {
		fmt.Fprintln(os.Stderr, "mtpu-serve: network ingest serves exactly one engine; pick one with -mode")
		return 2
	}

	profiles := profiling.Profiles{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	stopProfiles, err := profiling.StartAll(profiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Printf("mtpu-serve: %v", err)
		}
	}()

	tel := telemetry.New()
	if *telemetryAddr != "" {
		taddr, stopServer, err := tel.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
			return 1
		}
		fmt.Printf("telemetry: serving /metrics, /snapshot, /debug/vars, /debug/pprof on http://%s\n", taddr)
		defer func() {
			if err := stopServer(); err != nil {
				log.Printf("mtpu-serve: telemetry server: %v", err)
			}
		}()
	}

	// The source stream (when given) also supplies the genesis; a pure
	// network server derives genesis from -genesis so block producers
	// seeded identically stay compatible. Either flag accepts a stream
	// spec or a Zipfian scenario spec, dispatched on the scenario key.
	var src workload.BlockSource
	spec, err := workload.ParseSourceSpec(*genesisSpec)
	if *source != "" {
		spec, err = workload.ParseSourceSpec(*source)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
		return 2
	}

	cfg := stream.Config{
		NumPUs:        *pus,
		Queue:         *queue,
		HotspotTopN:   *hotspotTop,
		ShadowSample:  *shadowSample,
		ShadowLogOnly: *shadowLog,
		VerifyChain:   *verifyChain,
		Tel:           tel,
		Logf:          log.Printf,
	}

	var workloads []telemetry.Workload
	code := 0
	for _, m := range modes {
		// A fresh stream per engine: -source replays its blocks, a pure
		// network server only takes the genesis from it.
		src, err = spec.OpenSource()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
			return 2
		}
		cfg.Mode = m
		cfg.Genesis = src.Genesis()
		rep, err := serveOne(cfg, src, *source != "", *addr, *unixPath)
		if rep != nil {
			fmt.Print(rep.Render())
			if rep.Committed > 0 {
				base := fmt.Sprintf("serve/%s/%s-pus%d", m, spec.Describe(), *pus)
				workloads = append(workloads,
					telemetry.Workload{Key: base, Value: rep.TxsPerSec, Unit: "tx/s"},
					telemetry.Workload{Key: base + "/bps", Value: rep.BlocksPerSec, Unit: "blocks/s"})
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
			code = 1
			break
		}
	}

	// The drained snapshot must satisfy the stream invariants — a
	// violation means the pipeline lost or duplicated blocks.
	snap := tel.Snapshot()
	if snap.Stream != nil {
		if err := snap.Stream.Check(code == 0); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-serve: telemetry invariants: %v\n", err)
			code = 1
		}
	}

	if *ledgerPath != "" {
		acfg := arch.DefaultConfig()
		acfg.NumPUs = *pus
		entry := telemetry.NewEntry("mtpu-serve", args)
		entry.ConfigHash = telemetry.ConfigHash(acfg)
		entry.Profiles = profiles.Paths()
		entry.Workloads = workloads
		entry.Telemetry = &snap
		if err := telemetry.Append(*ledgerPath, entry); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-serve: %v\n", err)
			return 1
		}
		fmt.Printf("run ledger appended to %s (%d workloads)\n", *ledgerPath, len(workloads))
	}
	return code
}

// serveOne runs one service lifetime: start the pipeline, optionally
// start the listeners, feed the in-process source, drain on exhaustion
// or signal, and return the report.
func serveOne(cfg stream.Config, src workload.BlockSource, replay bool, addr, unixPath string) (*stream.Report, error) {
	svc, err := stream.New(cfg)
	if err != nil {
		return nil, err
	}

	var ingest *stream.Ingest
	if addr != "" || unixPath != "" {
		ingest, err = svc.ListenAndServe(addr, unixPath)
		if err != nil {
			svc.Close()
			svc.Wait()
			return nil, err
		}
		fmt.Printf("ingest: POST /blocks on %s\n", describeListeners(ingest.Addr, unixPath))
		defer ingest.Close()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		log.Printf("mtpu-serve: %s: draining (%s engine)", s, svc.Engine())
		svc.Close()
	}()

	if replay {
		for {
			b, ok := src.Next()
			if !ok {
				break
			}
			if err := svc.Submit(b); err != nil {
				break // draining or halted; Wait reports why
			}
		}
		svc.Close()
	}
	// A pure network server drains only on signal; the goroutine above
	// triggers Close, and Wait returns once the pipeline is empty.
	return svc.Wait()
}

func describeListeners(addr, unixPath string) string {
	switch {
	case addr != "" && unixPath != "":
		return fmt.Sprintf("http://%s and unix:%s", addr, unixPath)
	case addr != "":
		return "http://" + addr
	default:
		return "unix:" + unixPath
	}
}

// parseModes resolves -mode against the engine registry: "all"
// enumerates every registered engine in registration order.
func parseModes(spec string) ([]engine.Mode, error) {
	if spec == "all" {
		return engine.Modes(), nil
	}
	var modes []engine.Mode
	for _, name := range strings.Split(spec, ",") {
		m, err := engine.Parse(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		modes = append(modes, m)
	}
	return modes, nil
}
