package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtpu/internal/telemetry"
)

// notDirPath returns a ledger path that cannot be created: its parent
// is a regular file, so opening fails with ENOTDIR even when the test
// runs with broad filesystem permissions.
func notDirPath(t *testing.T) string {
	t.Helper()
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(blocker, "ledger.jsonl")
}

func TestVersionExitsZero(t *testing.T) {
	if code := realMain([]string{"-version"}); code != 0 {
		t.Fatalf("-version exited %d", code)
	}
}

func TestNoWorkExitsTwo(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Fatalf("no flags exited %d, want 2 (usage error)", code)
	}
}

func TestBadSpecExitsTwo(t *testing.T) {
	if code := realMain([]string{"-source", "blocks=0"}); code != 2 {
		t.Fatalf("invalid spec exited %d, want 2", code)
	}
	if code := realMain([]string{"-source", "blocks=4", "-mode", "no-such-engine"}); code != 2 {
		t.Fatalf("unknown engine exited %d, want 2", code)
	}
	if code := realMain([]string{"-source", "blocks=4", "-mode", "all", "-addr", "127.0.0.1:0"}); code != 2 {
		t.Fatalf("-mode all with network ingest exited %d, want 2", code)
	}
}

// TestSourceRunWritesLedger is the happy path: a short in-process
// stream drains cleanly, exits zero, and the ledger entry carries the
// serve workloads, the build fingerprint and the stream telemetry.
func TestSourceRunWritesLedger(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "serve.jsonl")
	code := realMain([]string{
		"-source", "blocks=6,txs=8,dep=0.2,seed=3",
		"-mode", "scalar", "-shadow-sample", "1",
		"-ledger", ledger,
	})
	if code != 0 {
		t.Fatalf("source run exited %d", code)
	}
	art, err := telemetry.LoadArtifact(ledger)
	if err != nil {
		t.Fatalf("loading ledger: %v", err)
	}
	var tps, bps bool
	for _, w := range art.Workloads {
		if strings.HasPrefix(w.Key, "serve/scalar/") {
			switch w.Unit {
			case "tx/s":
				tps = w.Value > 0
			case "blocks/s":
				bps = w.Value > 0
			}
		}
	}
	if !tps || !bps {
		t.Fatalf("ledger missing serve workloads (tx/s=%v blocks/s=%v): %+v", tps, bps, art.Workloads)
	}
}

// TestScenarioSourceRunWritesLedger drives a Zipfian scenario spec
// through the same path: chain verification on, every block
// shadow-validated, and a ledger key naming the scenario shape.
func TestScenarioSourceRunWritesLedger(t *testing.T) {
	ledger := filepath.Join(t.TempDir(), "serve.jsonl")
	code := realMain([]string{
		"-source", "scenario=oracle,blocks=6,txs=8,skew=1.2,seed=3",
		"-mode", "scalar", "-shadow-sample", "1", "-verify-chain",
		"-ledger", ledger,
	})
	if code != 0 {
		t.Fatalf("scenario source run exited %d", code)
	}
	art, err := telemetry.LoadArtifact(ledger)
	if err != nil {
		t.Fatalf("loading ledger: %v", err)
	}
	found := false
	for _, w := range art.Workloads {
		if strings.HasPrefix(w.Key, "serve/scalar/oracle-blocks6-txs8-skew1.20-pus") && w.Unit == "tx/s" {
			found = w.Value > 0
		}
	}
	if !found {
		t.Fatalf("ledger missing scenario serve workload: %+v", art.Workloads)
	}
}

// TestBadScenarioSpecExitsTwo: scenario spec validation reaches the CLI.
func TestBadScenarioSpecExitsTwo(t *testing.T) {
	if code := realMain([]string{"-source", "scenario=bogus"}); code != 2 {
		t.Fatalf("unknown scenario exited %d, want 2", code)
	}
	if code := realMain([]string{"-source", "scenario=dex,skew=NaN"}); code != 2 {
		t.Fatalf("NaN skew exited %d, want 2", code)
	}
}

// TestUnwritableLedgerExitsNonzero: a run that cannot record its ledger
// entry must fail loudly, not drop the record.
func TestUnwritableLedgerExitsNonzero(t *testing.T) {
	code := realMain([]string{
		"-source", "blocks=2,txs=4,seed=1",
		"-mode", "scalar", "-ledger", notDirPath(t),
	})
	if code == 0 {
		t.Fatal("unwritable ledger path exited 0")
	}
}
