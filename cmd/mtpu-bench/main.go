// Command mtpu-bench regenerates the paper's evaluation tables and
// figures on the simulated MTPU. Each subcommand prints one artifact;
// "all" prints everything (the EXPERIMENTS.md source data).
//
// Usage:
//
//	mtpu-bench [-seed N] {table2|table6|fig12|fig13|table7|fig14|fig15|fig16|table8|table9|chunking|all}
package main

import (
	"flag"
	"fmt"
	"os"

	"mtpu/internal/core"
	"mtpu/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload generator seed")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	env := experiments.NewEnv(*seed)
	cmd := flag.Arg(0)
	artifacts := map[string]func(){
		"table1": func() { fmt.Println(experiments.RenderTable1(experiments.Table1(env))) },
		"table2": func() { fmt.Println(experiments.RenderTable2(experiments.Table2(env))) },
		"table6": func() { fmt.Println(experiments.RenderTable6(experiments.Table6(env))) },
		"fig12":  func() { fmt.Println(experiments.RenderFig12(experiments.Fig12(env))) },
		"fig13":  func() { fmt.Println(experiments.RenderFig13(experiments.Fig13(env))) },
		"table7": func() { fmt.Println(experiments.RenderTable7(experiments.Table7(env))) },
		"fig14": func() {
			pts := experiments.Fig14(env)
			fmt.Println(experiments.RenderSchedPoints(
				"Fig.14(a) — speedup, synchronous execution", pts, core.ModeSynchronous, "speedup"))
			fmt.Println(experiments.RenderSchedPoints(
				"Fig.14(b) — speedup, spatio-temporal scheduling", pts, core.ModeSpatialTemporal, "speedup"))
		},
		"fig15": func() {
			pts := experiments.Fig14(env)
			fmt.Println(experiments.RenderSchedPoints(
				"Fig.15(a) — utilization, synchronous execution", pts, core.ModeSynchronous, "util"))
			fmt.Println(experiments.RenderSchedPoints(
				"Fig.15(b) — utilization, spatio-temporal scheduling", pts, core.ModeSpatialTemporal, "util"))
		},
		"fig16": func() {
			pts := experiments.Fig16(env)
			fmt.Println(experiments.RenderSchedPoints(
				"Fig.16(a) — speedup, ST + redundancy optimization", pts, core.ModeSTRedundancy, "speedup"))
			fmt.Println(experiments.RenderSchedPoints(
				"Fig.16(b) — speedup, ST + redundancy + hotspot", pts, core.ModeSTHotspot, "speedup"))
		},
		"table8":   func() { fmt.Println(experiments.RenderTable8(experiments.Table8(env))) },
		"table9":   func() { fmt.Println(experiments.RenderTable9(experiments.Table9(env))) },
		"chunking": func() { fmt.Println(experiments.RenderChunking(experiments.Chunking(env))) },
		"ablation": func() { fmt.Println(experiments.RenderAblations(experiments.Ablations(env))) },
	}
	order := []string{"table1", "table2", "table6", "fig12", "fig13", "table7",
		"fig14", "fig15", "fig16", "table8", "table9", "chunking", "ablation"}

	if cmd == "all" {
		for _, name := range order {
			artifacts[name]()
		}
		return
	}
	run, ok := artifacts[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "mtpu-bench: unknown artifact %q\n", cmd)
		usage()
		os.Exit(2)
	}
	run()
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mtpu-bench [-seed N] ARTIFACT
ARTIFACT is one of:
  table1    SCT count share vs execution-overhead share
  table2    bytecode share of the loaded context
  table6    instruction breakdown of the TOP-8 contracts
  fig12     ILP upper bound (F&D / +DF / +IF)
  fig13     DB-cache hit ratio vs size
  table7    single PU at 2K entries vs upper limit
  fig14     speedup: synchronous vs spatio-temporal
  fig15     PU utilization for the same sweep
  fig16     speedup with redundancy and hotspot optimization
  table8    BPU vs MTPU single core (ERC-20 share sweep)
  table9    BPU vs MTPU quad core (dependency sweep)
  chunking  hotspot chunking / pre-execution / prefetch report
  ablation  one-at-a-time design-choice ablations
  all       everything above`)
}
