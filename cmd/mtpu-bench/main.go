// Command mtpu-bench regenerates the paper's evaluation tables and
// figures on the simulated MTPU. Each subcommand prints one artifact;
// "all" prints everything (the EXPERIMENTS.md source data).
//
// Usage:
//
//	mtpu-bench [-seed N] [-parallel N] [-stats] [-json FILE] {table2|table6|fig12|fig13|table7|fig14|fig15|fig16|table8|table9|chunking|ablation|stm|bse|ladder|scenarios|all}
//	mtpu-bench -validate FILE
//
// Sweep points fan out over -parallel worker goroutines; results are
// byte-identical at every worker count (each point writes only its own
// output slot, and blocks/traces come from a call-order-independent
// cache). -json additionally writes a machine-readable wall-clock report;
// -stats merges per-experiment counter snapshots into it and prints them;
// -validate checks a previously written report against the schema.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"mtpu/internal/arch"
	"mtpu/internal/core"
	"mtpu/internal/engine"
	"mtpu/internal/experiments"
	"mtpu/internal/profiling"
	"mtpu/internal/telemetry"
)

// reportSchema versions the -json layout; bump on incompatible changes
// so checked-in BENCH_*.json files stay self-describing. v3 added the
// optimistic-baseline sweep rows ("stm"); v4 added the
// batch-schedule-execute sweep rows ("bse"); v5 added the simulator
// hot-loop throughput rows ("perf"); v6 added the build fingerprint
// ("build": module version, VCS revision/time); v7 added the
// mainnet-shaped scenario sweep rows ("scenarios").
const reportSchema = 7

// artifactResult is one experiment's rendering plus its sweep summary.
type artifactResult struct {
	output string
	points int // measured sweep points
	minSpd float64
	maxSpd float64
}

// experimentReport is one entry of the -json report.
type experimentReport struct {
	Name       string  `json:"name"`
	WallMS     float64 `json:"wall_ms"`
	Points     int     `json:"points"`
	MinSpeedup float64 `json:"min_speedup,omitempty"`
	MaxSpeedup float64 `json:"max_speedup,omitempty"`
}

// counterReport is one label's merged counter snapshot (-stats).
type counterReport struct {
	Label string `json:"label"`
	experiments.Snapshot
}

// benchReport is the -json document. The leading metadata block makes
// checked-in BENCH_*.json files self-describing: which schema, which
// toolchain, and which architectural configuration produced them.
type benchReport struct {
	Schema      int                 `json:"schema"`
	GoVersion   string              `json:"go_version"`
	Build       telemetry.BuildInfo `json:"build"`
	Seed        int64               `json:"seed"`
	Parallel    int                 `json:"parallel"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	Arch        arch.Config         `json:"arch"`
	Experiments []experimentReport  `json:"experiments"`
	Counters    []counterReport     `json:"counters,omitempty"`

	// STM and BSE carry the optimistic-baseline and
	// batch-schedule-execute sweep rows when those artifacts ran — the
	// source data of the EXPERIMENTS.md sections.
	STM []experiments.STMPoint `json:"stm,omitempty"`
	BSE []experiments.BSEPoint `json:"bse,omitempty"`
	// Perf carries the simulator hot-loop throughput rows ("perf"
	// artifact): host-side simulated-tx/s, the `make perf` regression
	// gate's input. Unlike every other artifact these measure the
	// simulator itself, so the numbers are machine-dependent.
	Perf []experiments.PerfPoint `json:"perf,omitempty"`
	// Scenarios carries the mainnet-shaped scenario sweep rows
	// ("scenarios" artifact): every Zipfian traffic shape replayed as a
	// chained block stream by every engine at each PU count. Cycles and
	// speedups are deterministic; tx/s is host wall-clock and therefore
	// machine-dependent, like Perf.
	Scenarios []experiments.ScenarioPoint `json:"scenarios,omitempty"`

	TotalWallMS float64 `json:"total_wall_ms"`
}

// spdRange folds a sequence of speedups into (points, min, max).
type spdRange struct {
	n        int
	min, max float64
}

func (r *spdRange) add(s float64) {
	if r.n == 0 || s < r.min {
		r.min = s
	}
	if r.n == 0 || s > r.max {
		r.max = s
	}
	r.n++
}

func main() {
	os.Exit(realMain())
}

// realMain is main with an exit code instead of os.Exit, so the
// deferred profile flush and telemetry-server shutdown run on every
// exit path — a mid-run os.Exit used to truncate profile artifacts
// silently.
func realMain() int {
	seed := flag.Int64("seed", experiments.DefaultSeed, "workload generator seed")
	parallel := flag.Int("parallel", 1, "worker goroutines per experiment (<=0 uses GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write a machine-readable wall-clock report to this file")
	stats := flag.Bool("stats", false, "collect per-experiment counter snapshots (printed and merged into -json)")
	validate := flag.String("validate", "", "validate a previously written -json report against the schema and exit")
	perfBaseline := flag.String("perf-baseline", "", "compare the perf artifact's tx/s against this committed report and fail on regression")
	perfMinRatio := flag.Float64("perf-min-ratio", 0.5, "minimum new/baseline tx/s ratio the -perf-baseline gate accepts")
	perfOnly := flag.String("perf-only", "", "run only perf points whose name contains this substring (profiling aid)")
	perfWall := flag.Duration("perf-wall", experiments.DefaultPerfWall, "per-point measurement budget of the perf artifact")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof goroutine-blocking profile at exit to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a pprof mutex-contention profile at exit to this file")
	ledgerPath := flag.String("ledger", "", "append a JSONL run-ledger entry (env fingerprint + workloads + telemetry) to this file")
	telemetryAddr := flag.String("telemetry-addr", "", "serve live metrics (Prometheus text, expvar, pprof) on this address while running")
	version := flag.Bool("version", false, "print build information and exit")
	flag.Usage = usage
	flag.Parse()
	if *version {
		fmt.Println(telemetry.Build())
		return 0
	}
	if *validate != "" {
		if err := validateReport(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: %s: %v\n", *validate, err)
			return 1
		}
		fmt.Printf("%s: valid (schema %d)\n", *validate, reportSchema)
		return 0
	}
	if flag.NArg() != 1 {
		usage()
		return 2
	}
	profiles := profiling.Profiles{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	stopProfiles, err := profiling.StartAll(profiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtpu-bench: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: %v\n", err)
		}
	}()

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	env := experiments.NewEnv(*seed)
	env.Workers = workers
	env.PerfWall = *perfWall
	if *stats {
		env.Stats = experiments.NewStatsRecorder()
	}
	if *ledgerPath != "" || *telemetryAddr != "" {
		env.Tel = telemetry.New()
	}
	if *telemetryAddr != "" {
		addr, stopServe, err := env.Tel.Serve(*telemetryAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: telemetry listener: %v\n", err)
			return 1
		}
		fmt.Printf("telemetry: serving /metrics /snapshot /debug/{vars,pprof} on http://%s\n", addr)
		defer stopServe()
	}

	cmd := flag.Arg(0)
	var stmPoints []experiments.STMPoint
	var bsePoints []experiments.BSEPoint
	var perfPoints []experiments.PerfPoint
	var scenarioPoints []experiments.ScenarioPoint
	artifacts := map[string]func() artifactResult{
		"perf": func() artifactResult {
			perfPoints = experiments.PerfSweepOnly(env, *perfOnly)
			return artifactResult{output: experiments.RenderPerf(perfPoints),
				points: len(perfPoints)}
		},
		"stm": func() artifactResult {
			stmPoints = experiments.STMSweep(env)
			var r spdRange
			for _, p := range stmPoints {
				r.add(p.STMSpeedup)
			}
			return artifactResult{output: experiments.RenderSTM(stmPoints),
				points: r.n, minSpd: r.min, maxSpd: r.max}
		},
		"bse": func() artifactResult {
			bsePoints = experiments.BSESweep(env)
			var r spdRange
			for _, p := range bsePoints {
				r.add(p.BSESpeedup)
			}
			return artifactResult{output: experiments.RenderBSE(bsePoints),
				points: r.n, minSpd: r.min, maxSpd: r.max}
		},
		"ladder": func() artifactResult {
			rows := experiments.Ladder(env)
			var r spdRange
			for _, row := range rows {
				r.add(row.Speedup)
			}
			return artifactResult{output: experiments.RenderLadder(rows),
				points: len(rows), minSpd: r.min, maxSpd: r.max}
		},
		"scenarios": func() artifactResult {
			scenarioPoints = experiments.ScenarioSweep(env)
			var r spdRange
			for _, p := range scenarioPoints {
				r.add(p.Speedup)
			}
			return artifactResult{output: experiments.RenderScenarios(scenarioPoints),
				points: r.n, minSpd: r.min, maxSpd: r.max}
		},
		"table1": func() artifactResult {
			rows := experiments.Table1(env)
			return artifactResult{output: experiments.RenderTable1(rows), points: len(rows)}
		},
		"table2": func() artifactResult {
			rows := experiments.Table2(env)
			return artifactResult{output: experiments.RenderTable2(rows), points: len(rows)}
		},
		"table6": func() artifactResult {
			rows := experiments.Table6(env)
			return artifactResult{output: experiments.RenderTable6(rows), points: len(rows)}
		},
		"fig12": func() artifactResult {
			rows := experiments.Fig12(env)
			var r spdRange
			for _, row := range rows {
				for _, s := range row.Speedup {
					r.add(s)
				}
			}
			return artifactResult{output: experiments.RenderFig12(rows),
				points: r.n, minSpd: r.min, maxSpd: r.max}
		},
		"fig13": func() artifactResult {
			rows := experiments.Fig13(env)
			points := 0
			for _, row := range rows {
				points += len(row.HitRatios)
			}
			return artifactResult{output: experiments.RenderFig13(rows), points: points}
		},
		"table7": func() artifactResult {
			rows := experiments.Table7(env)
			var r spdRange
			for _, row := range rows {
				r.add(row.At2KSpeedup)
			}
			return artifactResult{output: experiments.RenderTable7(rows),
				points: len(rows), minSpd: r.min, maxSpd: r.max}
		},
		"fig14": func() artifactResult {
			pts := experiments.Fig14(env)
			out := experiments.RenderSchedPoints(
				"Fig.14(a) — speedup, synchronous execution", pts, core.ModeSynchronous, "speedup") + "\n" +
				experiments.RenderSchedPoints(
					"Fig.14(b) — speedup, spatio-temporal scheduling", pts, core.ModeSpatialTemporal, "speedup")
			return schedResult(out, pts)
		},
		"fig15": func() artifactResult {
			pts := experiments.Fig14(env)
			out := experiments.RenderSchedPoints(
				"Fig.15(a) — utilization, synchronous execution", pts, core.ModeSynchronous, "util") + "\n" +
				experiments.RenderSchedPoints(
					"Fig.15(b) — utilization, spatio-temporal scheduling", pts, core.ModeSpatialTemporal, "util")
			return schedResult(out, pts)
		},
		"fig16": func() artifactResult {
			pts := experiments.Fig16(env)
			out := experiments.RenderSchedPoints(
				"Fig.16(a) — speedup, ST + redundancy optimization", pts, core.ModeSTRedundancy, "speedup") + "\n" +
				experiments.RenderSchedPoints(
					"Fig.16(b) — speedup, ST + redundancy + hotspot", pts, core.ModeSTHotspot, "speedup")
			return schedResult(out, pts)
		},
		"table8": func() artifactResult {
			rows := experiments.Table8(env)
			var r spdRange
			for _, row := range rows {
				r.add(row.MTPUSpeedup)
			}
			return artifactResult{output: experiments.RenderTable8(rows),
				points: len(rows), minSpd: r.min, maxSpd: r.max}
		},
		"table9": func() artifactResult {
			rows := experiments.Table9(env)
			var r spdRange
			for _, row := range rows {
				r.add(row.MTPUSpeedup)
			}
			return artifactResult{output: experiments.RenderTable9(rows),
				points: len(rows), minSpd: r.min, maxSpd: r.max}
		},
		"chunking": func() artifactResult {
			rows := experiments.Chunking(env)
			return artifactResult{output: experiments.RenderChunking(rows), points: len(rows)}
		},
		"ablation": func() artifactResult {
			rows := experiments.Ablations(env)
			var r spdRange
			for _, row := range rows {
				r.add(row.Speedup)
			}
			return artifactResult{output: experiments.RenderAblations(rows),
				points: len(rows), minSpd: r.min, maxSpd: r.max}
		},
	}
	order := []string{"table1", "table2", "table6", "fig12", "fig13", "table7",
		"fig14", "fig15", "fig16", "table8", "table9", "chunking", "ablation", "stm", "bse",
		"ladder", "scenarios", "perf"}

	var names []string
	if cmd == "all" {
		names = order
	} else if _, ok := artifacts[cmd]; ok {
		names = []string{cmd}
	} else {
		fmt.Fprintf(os.Stderr, "mtpu-bench: unknown artifact %q\n", cmd)
		usage()
		return 2
	}

	report := benchReport{
		Schema:     reportSchema,
		GoVersion:  runtime.Version(),
		Build:      telemetry.Build(),
		Seed:       *seed,
		Parallel:   workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Arch:       arch.DefaultConfig(),
	}
	start := time.Now()
	for _, name := range names {
		expStart := time.Now()
		res := artifacts[name]()
		fmt.Println(res.output)
		report.Experiments = append(report.Experiments, experimentReport{
			Name:       name,
			WallMS:     float64(time.Since(expStart).Microseconds()) / 1000,
			Points:     res.points,
			MinSpeedup: res.minSpd,
			MaxSpeedup: res.maxSpd,
		})
	}
	report.STM = stmPoints
	report.BSE = bsePoints
	report.Perf = perfPoints
	report.Scenarios = scenarioPoints
	report.TotalWallMS = float64(time.Since(start).Microseconds()) / 1000

	if *perfBaseline != "" {
		if err := gatePerf(*perfBaseline, perfPoints, *perfMinRatio); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: perf gate: %v\n", err)
			return 1
		}
		fmt.Printf("perf gate: ok (every point >= %.2fx the %s baseline)\n", *perfMinRatio, *perfBaseline)
	}

	if env.Stats != nil {
		fmt.Println(experiments.RenderStats(env.Stats))
		for _, label := range env.Stats.Labels() {
			report.Counters = append(report.Counters,
				counterReport{Label: label, Snapshot: env.Stats.Get(label)})
		}
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(&report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: encoding report: %v\n", err)
			return 1
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: writing report: %v\n", err)
			return 1
		}
	}

	if *ledgerPath != "" {
		entry := telemetry.NewEntry("mtpu-bench", flag.Args())
		entry.ConfigHash = telemetry.ConfigHash(report.Arch)
		entry.Profiles = profiles.Paths()
		entry.Workloads = reportWorkloads(&report)
		if env.Tel != nil {
			snap := env.Tel.Snapshot()
			entry.Telemetry = &snap
		}
		if err := telemetry.Append(*ledgerPath, entry); err != nil {
			fmt.Fprintf(os.Stderr, "mtpu-bench: ledger: %v\n", err)
			return 1
		}
	}
	return 0
}

// reportWorkloads flattens a report to the ledger's comparable
// workloads: perf rows as host tx/s under the same perf/<name> keys
// telemetry.LoadArtifact derives from a raw report, plus each
// experiment's sweep-points-per-second as a coarse wall-clock proxy.
func reportWorkloads(r *benchReport) []telemetry.Workload {
	var out []telemetry.Workload
	for _, p := range r.Perf {
		out = append(out, telemetry.Workload{Key: "perf/" + p.Name, Value: p.TxPerSec, Unit: "tx/s"})
	}
	for _, e := range r.Experiments {
		if e.Name == "perf" || e.Points == 0 || e.WallMS <= 0 {
			continue
		}
		out = append(out, telemetry.Workload{
			Key:   "bench/" + e.Name,
			Value: float64(e.Points) / (e.WallMS / 1000),
			Unit:  "points/s",
		})
	}
	return out
}

// validateReport strictly decodes a -json report and checks the schema
// invariants: known schema version, non-empty self-description, sane
// per-experiment numbers, and internally consistent counters.
func validateReport(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var r benchReport
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("decoding: %w", err)
	}
	return checkReport(&r)
}

// finite rejects NaN and ±Inf — values encoding/json would never emit
// itself, so their presence means the file was edited or produced by a
// non-Go writer, and every downstream plot/comparison would silently
// propagate them.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s is %v, want a finite number", name, v)
	}
	return nil
}

// checkReport enforces the schema-4 invariants on a decoded report.
// Split from the file decoding so corruptions JSON cannot represent
// (NaN, ±Inf) are testable by constructing the struct directly.
func checkReport(r *benchReport) error {
	if r.Schema != reportSchema {
		return fmt.Errorf("schema %d, want %d", r.Schema, reportSchema)
	}
	if r.GoVersion == "" {
		return fmt.Errorf("missing go_version")
	}
	// v6: the build fingerprint must at least name the toolchain; VCS
	// fields may legitimately be empty (`go run` embeds no VCS stamp).
	if r.Build.GoVersion == "" {
		return fmt.Errorf("missing build.go_version (schema 6 build fingerprint)")
	}
	if r.Parallel < 1 || r.GOMAXPROCS < 1 {
		return fmt.Errorf("bad worker metadata: parallel=%d gomaxprocs=%d", r.Parallel, r.GOMAXPROCS)
	}
	if r.Arch.NumPUs < 1 {
		return fmt.Errorf("arch snapshot missing (num_pus=%d)", r.Arch.NumPUs)
	}
	if len(r.Experiments) == 0 {
		return fmt.Errorf("no experiments")
	}
	for _, e := range r.Experiments {
		if e.Name == "" {
			return fmt.Errorf("experiment with empty name")
		}
		if err := finite(e.Name+": wall_ms", e.WallMS); err != nil {
			return err
		}
		if err := finite(e.Name+": min_speedup", e.MinSpeedup); err != nil {
			return err
		}
		if err := finite(e.Name+": max_speedup", e.MaxSpeedup); err != nil {
			return err
		}
		if e.WallMS < 0 || e.Points < 0 {
			return fmt.Errorf("%s: negative wall_ms/points", e.Name)
		}
		// A report that claims a sweep artifact ran must carry its rows —
		// this is what catches a schema bump (v4 added bse) without the
		// checked-in file being regenerated.
		if e.Name == "stm" && len(r.STM) != e.Points {
			return fmt.Errorf("stm: %d rows for %d points", len(r.STM), e.Points)
		}
		if e.Name == "bse" && len(r.BSE) != e.Points {
			return fmt.Errorf("bse: %d rows for %d points", len(r.BSE), e.Points)
		}
		if e.Name == "perf" && len(r.Perf) != e.Points {
			return fmt.Errorf("perf: %d rows for %d points", len(r.Perf), e.Points)
		}
		if e.Name == "scenarios" && len(r.Scenarios) != e.Points {
			return fmt.Errorf("scenarios: %d rows for %d points", len(r.Scenarios), e.Points)
		}
	}
	for _, p := range r.Perf {
		if p.Name == "" {
			return fmt.Errorf("perf row with empty name")
		}
		if p.Txs < 1 || p.Reps < 1 {
			return fmt.Errorf("perf %s: bad volume (txs=%d reps=%d)", p.Name, p.Txs, p.Reps)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"wall_ms", p.WallMS}, {"tx_per_sec", p.TxPerSec}, {"instr_per_sec", p.InstrPerSec},
		} {
			if err := finite(fmt.Sprintf("perf %s: %s", p.Name, v.name), v.val); err != nil {
				return err
			}
		}
		if p.WallMS <= 0 || p.TxPerSec <= 0 {
			return fmt.Errorf("perf %s: non-positive wall/tx_per_sec", p.Name)
		}
		if p.InstrPerSec < 0 {
			return fmt.Errorf("perf %s: negative instr_per_sec", p.Name)
		}
	}
	for _, p := range r.STM {
		if p.PUs < 1 || p.Txs < 1 {
			return fmt.Errorf("stm ratio %.1f: bad grid point (pus=%d txs=%d)", p.TargetRatio, p.PUs, p.Txs)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"target_ratio", p.TargetRatio}, {"dep_ratio", p.DepRatio},
			{"sync_speedup", p.SyncSpeedup}, {"st_speedup", p.STSpeedup}, {"stm_speedup", p.STMSpeedup},
		} {
			if err := finite(fmt.Sprintf("stm pus %d: %s", p.PUs, v.name), v.val); err != nil {
				return err
			}
		}
		if p.SyncSpeedup <= 0 || p.STSpeedup <= 0 || p.STMSpeedup <= 0 {
			return fmt.Errorf("stm ratio %.1f pus %d: non-positive speedup", p.TargetRatio, p.PUs)
		}
		s := p.Stats
		// Counter fields are signed in the schema, so a corrupted file can
		// carry negatives the identity checks below would cancel out.
		if s.Txs < 0 || s.Incarnations < 0 || s.Aborts < 0 || s.EstimateAborts < 0 ||
			s.ValidationPasses < 0 || s.ValidationFails < 0 || s.EstimateWaits < 0 {
			return fmt.Errorf("stm ratio %.1f pus %d: negative counter (%+v)", p.TargetRatio, p.PUs, s)
		}
		if s.Incarnations-s.Aborts != p.Txs {
			return fmt.Errorf("stm ratio %.1f pus %d: incarnations %d - aborts %d != txs %d",
				p.TargetRatio, p.PUs, s.Incarnations, s.Aborts, p.Txs)
		}
		if s.Aborts != s.EstimateAborts+s.ValidationFails {
			return fmt.Errorf("stm ratio %.1f pus %d: aborts %d != estimate %d + validation %d",
				p.TargetRatio, p.PUs, s.Aborts, s.EstimateAborts, s.ValidationFails)
		}
		if got := s.ExecCycles + s.ValidateCycles + s.IdleCycles; got != uint64(p.PUs)*p.STMCycles {
			return fmt.Errorf("stm ratio %.1f pus %d: cycle terms %d != pus×makespan %d",
				p.TargetRatio, p.PUs, got, uint64(p.PUs)*p.STMCycles)
		}
		if s.WastedCycles > s.ExecCycles {
			return fmt.Errorf("stm ratio %.1f pus %d: wasted %d exceeds exec %d",
				p.TargetRatio, p.PUs, s.WastedCycles, s.ExecCycles)
		}
	}
	for _, p := range r.BSE {
		if p.PUs < 1 || p.Txs < 1 {
			return fmt.Errorf("bse ratio %.1f: bad grid point (pus=%d txs=%d)", p.TargetRatio, p.PUs, p.Txs)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"target_ratio", p.TargetRatio}, {"dep_ratio", p.DepRatio},
			{"sync_speedup", p.SyncSpeedup}, {"st_speedup", p.STSpeedup}, {"bse_speedup", p.BSESpeedup},
		} {
			if err := finite(fmt.Sprintf("bse pus %d: %s", p.PUs, v.name), v.val); err != nil {
				return err
			}
		}
		if p.Batches < 1 || p.Batches > p.Txs {
			return fmt.Errorf("bse ratio %.1f pus %d: %d batches for %d txs",
				p.TargetRatio, p.PUs, p.Batches, p.Txs)
		}
		if p.SyncSpeedup <= 0 || p.STSpeedup <= 0 || p.BSESpeedup <= 0 {
			return fmt.Errorf("bse ratio %.1f pus %d: non-positive speedup", p.TargetRatio, p.PUs)
		}
		if p.BSECycles < p.STCycles {
			return fmt.Errorf("bse ratio %.1f pus %d: barrier schedule %d cycles beat spatial-temporal %d",
				p.TargetRatio, p.PUs, p.BSECycles, p.STCycles)
		}
	}
	for _, p := range r.Scenarios {
		if p.Scenario == "" || p.Engine == "" {
			return fmt.Errorf("scenario row with empty scenario/engine name (%+v)", p)
		}
		if p.PUs < 1 || p.Blocks < 1 || p.Txs < 1 {
			return fmt.Errorf("scenario %s/%s: bad shape (pus=%d blocks=%d txs=%d)",
				p.Scenario, p.Engine, p.PUs, p.Blocks, p.Txs)
		}
		for _, v := range []struct {
			name string
			val  float64
		}{
			{"skew", p.Skew}, {"speedup", p.Speedup}, {"tx_per_sec", p.TxPerSec},
		} {
			if err := finite(fmt.Sprintf("scenario %s/%s: %s", p.Scenario, p.Engine, v.name), v.val); err != nil {
				return err
			}
		}
		if p.Cycles == 0 || p.Speedup <= 0 || p.TxPerSec <= 0 {
			return fmt.Errorf("scenario %s/%s pus %d: empty measurement (cycles=%d speedup=%v tx/s=%v)",
				p.Scenario, p.Engine, p.PUs, p.Cycles, p.Speedup, p.TxPerSec)
		}
	}
	for _, c := range r.Counters {
		if c.Label == "" {
			return fmt.Errorf("counter snapshot with empty label")
		}
		if c.Points <= 0 {
			return fmt.Errorf("%s: counter snapshot without points", c.Label)
		}
		if c.Cycles == 0 {
			return fmt.Errorf("%s: counter snapshot without cycles", c.Label)
		}
		p := c.Pipeline
		if p.IssueCycles > p.Cycles {
			return fmt.Errorf("%s: issue cycles %d exceed total cycles %d", c.Label, p.IssueCycles, p.Cycles)
		}
		if p.HitInstructions > p.Instructions {
			return fmt.Errorf("%s: hit instructions %d exceed instructions %d", c.Label, p.HitInstructions, p.Instructions)
		}
		if p.LineEvictions > p.LinesCached {
			return fmt.Errorf("%s: evictions %d exceed fills %d", c.Label, p.LineEvictions, p.LinesCached)
		}
	}
	if err := finite("total_wall_ms", r.TotalWallMS); err != nil {
		return err
	}
	if r.TotalWallMS < 0 {
		return fmt.Errorf("negative total_wall_ms %v", r.TotalWallMS)
	}
	return nil
}

// gatePerf compares freshly measured perf points against the committed
// baseline report through the same telemetry.Compare path mtpu-report
// uses, so a gate failure prints the full per-workload ratio table
// rather than just the first offender. The threshold is deliberately
// loose — it catches an order-of-magnitude hot-loop regression, not
// machine-to-machine noise between the committing and the CI host.
func gatePerf(baselinePath string, points []experiments.PerfPoint, minRatio float64) error {
	if len(points) == 0 {
		return fmt.Errorf("no perf points measured (did the run include the perf artifact?)")
	}
	base, err := telemetry.LoadArtifact(baselinePath)
	if err != nil {
		return err
	}
	hasPerf := false
	for _, w := range base.Workloads {
		if strings.HasPrefix(w.Key, "perf/") {
			hasPerf = true
			break
		}
	}
	if !hasPerf {
		return fmt.Errorf("%s carries no perf rows (regenerate it with the perf artifact)", baselinePath)
	}
	measured := &telemetry.Artifact{Path: "measured", Kind: "bench"}
	for _, p := range points {
		measured.Workloads = append(measured.Workloads,
			telemetry.Workload{Key: "perf/" + p.Name, Value: p.TxPerSec, Unit: "tx/s"})
	}
	cmp := telemetry.Compare([]*telemetry.Artifact{base, measured}, minRatio)
	if regs := cmp.Regressions(); len(regs) > 0 {
		fmt.Fprint(os.Stderr, cmp.Render())
		return fmt.Errorf("%d perf workload(s) below %.2fx the %s baseline (table above)",
			len(regs), minRatio, baselinePath)
	}
	return nil
}

// schedResult summarizes a scheduling sweep's speedup range.
func schedResult(out string, pts []experiments.SchedPoint) artifactResult {
	var r spdRange
	for _, p := range pts {
		r.add(p.Speedup)
	}
	return artifactResult{output: out, points: r.n, minSpd: r.min, maxSpd: r.max}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mtpu-bench [-seed N] [-parallel N] [-stats] [-json FILE] ARTIFACT
       mtpu-bench -validate FILE
ARTIFACT is one of:
  table1    SCT count share vs execution-overhead share
  table2    bytecode share of the loaded context
  table6    instruction breakdown of the TOP-8 contracts
  fig12     ILP upper bound (F&D / +DF / +IF)
  fig13     DB-cache hit ratio vs size
  table7    single PU at 2K entries vs upper limit
  fig14     speedup: synchronous vs spatio-temporal
  fig15     PU utilization for the same sweep
  fig16     speedup with redundancy and hotspot optimization
  table8    BPU vs MTPU single core (ERC-20 share sweep)
  table9    BPU vs MTPU quad core (dependency sweep)
  chunking  hotspot chunking / pre-execution / prefetch report
  ablation  one-at-a-time design-choice ablations
  stm       optimistic (Block-STM) baseline vs DAG-driven scheduling
  bse       pre-scheduled batch-execute engine vs DAG-driven scheduling
  ladder    every registered engine on the reference block
  scenarios mainnet-shaped Zipfian scenario chains (erc20-mix, dex,
            nft-mint, airdrop, oracle) on every engine at each PU count
  perf      simulator hot-loop throughput (host-side simulated-tx/s)
  all       everything above
registered execution engines: `+strings.Join(engine.Names(), ", ")+`
flags:
  -seed N      workload generator seed (default the ISCA'23 seed)
  -parallel N  worker goroutines per experiment; <=0 uses GOMAXPROCS.
               Output is byte-identical at every setting.
  -stats       collect per-experiment counter snapshots; printed as a
               summary table and merged into the -json report
  -json FILE   write wall-clock/points/speedup summary as JSON, with
               run metadata (schema, go version, arch config)
  -validate F  strictly decode a -json report, check the schema
               invariants, and exit
  -perf-baseline F  after running, compare the perf artifact's tx/s
               against the committed report F and fail on regression
               (printing the mtpu-report ratio table)
  -perf-min-ratio R minimum new/baseline tx/s the gate accepts (0.5)
  -ledger F    append a JSONL run-ledger entry: build + host
               fingerprint, per-workload throughput, telemetry snapshot
  -telemetry-addr A  serve live metrics on A while running
               (/metrics Prometheus text, /snapshot JSON, /debug/vars,
               /debug/pprof)
  -version     print build information and exit
  -cpuprofile F  write a pprof CPU profile of the run
  -memprofile F  write a pprof heap profile at exit
  -blockprofile F  write a goroutine-blocking profile at exit
  -mutexprofile F  write a mutex-contention profile at exit`)
}
