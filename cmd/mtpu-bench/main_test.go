package main

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadArtifact decodes the checked-in schema-4 artifact into a generic
// tree the corruption cases can edit before re-marshalling.
func loadArtifact(t *testing.T) map[string]any {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_sweeps.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func writeDoc(t *testing.T, doc map[string]any) string {
	t.Helper()
	buf, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func firstRow(t *testing.T, doc map[string]any, key string) map[string]any {
	t.Helper()
	rows, ok := doc[key].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("artifact has no %q rows", key)
	}
	row, ok := rows[0].(map[string]any)
	if !ok {
		t.Fatalf("%s[0] is not an object", key)
	}
	return row
}

// TestValidateAcceptsCheckedInArtifact pins the baseline: the repo's own
// artifact must stay valid or the corruption cases prove nothing.
func TestValidateAcceptsCheckedInArtifact(t *testing.T) {
	if err := validateReport(filepath.Join("..", "..", "BENCH_sweeps.json")); err != nil {
		t.Fatalf("checked-in artifact rejected: %v", err)
	}
}

// TestValidateRejectsCorruptedArtifact feeds single-field corruptions of
// the real BENCH_sweeps.json through -validate's code path.
func TestValidateRejectsCorruptedArtifact(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(*testing.T, map[string]any)
		wantMsg string
	}{
		{"negative stm counter", func(t *testing.T, doc map[string]any) {
			row := firstRow(t, doc, "stm")
			stats := row["stm"].(map[string]any)
			// Shift both terms of the commit identity negative so only the
			// sign check can object.
			stats["incarnations"] = float64(-1)
			stats["aborts"] = -1 - stats["txs"].(float64)
			stats["estimate_aborts"] = stats["aborts"]
			stats["validation_fails"] = float64(0)
		}, "negative counter"},
		{"negative wall clock", func(t *testing.T, doc map[string]any) {
			doc["total_wall_ms"] = float64(-4)
		}, "total_wall_ms"},
		{"negative experiment points", func(t *testing.T, doc map[string]any) {
			firstRow(t, doc, "experiments")["points"] = float64(-3)
		}, "negative"},
		{"unknown field", func(t *testing.T, doc map[string]any) {
			doc["warp_factor"] = float64(9)
		}, "unknown field"},
		{"wrong schema", func(t *testing.T, doc map[string]any) {
			doc["schema"] = float64(3)
		}, "schema"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			doc := loadArtifact(t)
			tc.corrupt(t, doc)
			err := validateReport(writeDoc(t, doc))
			if err == nil {
				t.Fatal("corrupted artifact accepted")
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestCheckReportRejectsNonFinite covers the corruptions JSON cannot
// carry: NaN and ±Inf land in the struct directly (e.g. from a future
// non-JSON ingest path) and must still be rejected.
func TestCheckReportRejectsNonFinite(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_sweeps.json"))
	if err != nil {
		t.Fatal(err)
	}
	base := func(t *testing.T) *benchReport {
		var r benchReport
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		return &r
	}
	if err := checkReport(base(t)); err != nil {
		t.Fatalf("baseline rejected: %v", err)
	}
	for _, tc := range []struct {
		name    string
		corrupt func(*benchReport)
	}{
		{"NaN stm speedup", func(r *benchReport) { r.STM[0].STMSpeedup = math.NaN() }},
		{"+Inf bse speedup", func(r *benchReport) { r.BSE[0].BSESpeedup = math.Inf(1) }},
		{"-Inf dep ratio", func(r *benchReport) { r.STM[0].DepRatio = math.Inf(-1) }},
		{"NaN wall_ms", func(r *benchReport) { r.Experiments[0].WallMS = math.NaN() }},
		{"NaN total", func(r *benchReport) { r.TotalWallMS = math.NaN() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := base(t)
			tc.corrupt(r)
			err := checkReport(r)
			if err == nil {
				t.Fatal("non-finite value accepted")
			}
			if !strings.Contains(err.Error(), "finite") {
				t.Errorf("error %q does not mention finiteness", err)
			}
		})
	}
}

// benchMain invokes realMain with a fresh global flag set, restoring
// process state afterwards.
func benchMain(t *testing.T, args ...string) int {
	t.Helper()
	oldArgs, oldFlags := os.Args, flag.CommandLine
	defer func() { os.Args, flag.CommandLine = oldArgs, oldFlags }()
	flag.CommandLine = flag.NewFlagSet("mtpu-bench", flag.ExitOnError)
	os.Args = append([]string{"mtpu-bench"}, args...)
	return realMain()
}

// TestUnwritableLedgerExitsNonzero: a bench run whose ledger entry
// cannot be written must exit non-zero — and because realMain returns
// instead of calling os.Exit, the deferred profile flush still ran.
func TestUnwritableLedgerExitsNonzero(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := benchMain(t, "-ledger", filepath.Join(blocker, "ledger.jsonl"), "table1")
	if code == 0 {
		t.Fatal("unwritable ledger path exited 0")
	}
}
